(* The causal blame engine: backward slicing from a violating read or a
   critical alert to the injected fault that explains it, plus the
   flight-recorder neutrality guarantees it depends on. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_experiments

(* --- synthetic traces: exact control over spans and timestamps --- *)

(* Build a trace from (at_us, span, event) triples via the JSONL loader —
   the only public path that lets a test pick its own timestamps. *)
let trace_of events =
  let lines =
    List.map
      (fun (at_us, span, ev) ->
        Json.to_string (Trace.event_to_json ~at:(Time.of_us at_us) ~span ev))
      events
  in
  match Trace.of_jsonl (String.concat "\n" lines) with
  | Ok tr -> tr
  | Error msg -> Alcotest.failf "synthetic trace did not load: %s" msg

let test_span_drop_blamed () =
  (* Span 5 is a read fault on page 3 whose page send gets dropped; span 9
     is unrelated traffic on page 8.  Blaming the violating read on page 3
     must name exactly the span-5 drop and nothing from span 9. *)
  let tr =
    trace_of
      [
        (10., 5, Trace.Fault { node = 2; page = 3; protocol = "li_hudak"; mode = "read" });
        ( 12.,
          9,
          Trace.Fault { node = 1; page = 8; protocol = "li_hudak"; mode = "read" } );
        ( 15.,
          5,
          Trace.Page_request
            { node = 0; page = 3; protocol = "li_hudak"; mode = "read"; requester = 2 }
        );
        ( 20.,
          5,
          Trace.Page_send
            { node = 0; page = 3; protocol = "li_hudak"; dst = 2; bytes = 4096; grant = "R" }
        );
        (20., 9, Trace.Drop { src = 3; dst = 1; kind = "msg.bulk" });
        (30., 5, Trace.Drop { src = 0; dst = 2; kind = "msg.bulk" });
      ]
  in
  let x = Explain.explain_violation ~trace:tr ~node:2 ~page:3 ~at:(Time.of_us 100.) ~detail:"stale read" in
  Alcotest.(check (list int)) "seed span is the page-3 operation" [ 5 ]
    (Explain.target x |> fun _ -> x.Explain.x_spans);
  (match Explain.causes x with
  | [ Explain.Dropped_message { c_src; c_dst; c_kind; c_span; c_blackhole; _ } ] ->
      Alcotest.(check int) "drop src" 0 c_src;
      Alcotest.(check int) "drop dst" 2 c_dst;
      Alcotest.(check string) "drop kind" "msg.bulk" c_kind;
      Alcotest.(check int) "drop span" 5 c_span;
      Alcotest.(check bool) "seeded loss, not blackhole" false c_blackhole
  | cs -> Alcotest.failf "expected exactly the span-5 drop, got %d causes" (List.length cs));
  (* The slice holds the whole span-5 chain and none of span 9. *)
  Alcotest.(check int) "slice is the span-5 chain" 4 (List.length x.Explain.x_slice);
  List.iter
    (fun ((e : Trace.entry), _) ->
      Alcotest.(check bool) "no span-9 event leaks in" false (e.Trace.span = 9))
    x.Explain.x_slice

let test_causes_respect_target_instant () =
  (* A drop after the violating read cannot have caused it. *)
  let tr =
    trace_of
      [
        (10., 5, Trace.Fault { node = 2; page = 3; protocol = "li_hudak"; mode = "read" });
        (30., 5, Trace.Drop { src = 0; dst = 2; kind = "msg.bulk" });
      ]
  in
  let x =
    Explain.explain_violation ~trace:tr ~node:2 ~page:3 ~at:(Time.of_us 20.)
      ~detail:"stale read"
  in
  Alcotest.(check int) "later drop not blamed" 0 (List.length (Explain.causes x))

let test_crash_window_blamed () =
  (* A crash window on a node the seed span runs across is a cause even
     though the frozen node emits nothing while down. *)
  let tr =
    trace_of
      [
        (5., -1, Trace.Crash { node = 0; up = Time.of_us 400. });
        (10., 5, Trace.Fault { node = 2; page = 3; protocol = "li_hudak"; mode = "read" });
        ( 15.,
          5,
          Trace.Page_request
            { node = 0; page = 3; protocol = "li_hudak"; mode = "read"; requester = 2 }
        );
        (400., -1, Trace.Restart { node = 0 });
      ]
  in
  let x =
    Explain.explain_violation ~trace:tr ~node:2 ~page:3 ~at:(Time.of_us 500.)
      ~detail:"stale read"
  in
  match Explain.causes x with
  | [ Explain.Crash_window { c_node; c_up; _ } ] ->
      Alcotest.(check int) "crashed node" 0 c_node;
      Alcotest.(check int) "window end" (Time.of_us 400.) c_up
  | cs -> Alcotest.failf "expected the crash window, got %d causes" (List.length cs)

(* --- the real thing: faulted conformance runs --- *)

let driver = Driver.bip_myrinet

(* The first li_hudak seed whose faulted racy_poll run fails; the sweep
   demonstrates there is one early. *)
let failing_li_hudak_outcome () =
  let rec find seed =
    if seed > 24 then Alcotest.fail "no failing li_hudak seed in 0..24"
    else
      let o =
        Conformance.run_one_faulted ~explain:true ~protocol:"li_hudak" ~driver
          ~workload:Conformance.Racy_poll ~seed ()
      in
      if Conformance.fault_outcome_failed o then o else find (seed + 1)
  in
  find 0

let test_li_hudak_failure_explained () =
  let o = failing_li_hudak_outcome () in
  let xs = o.Conformance.fo_explanations in
  Alcotest.(check bool) "failure carries explanations" true (xs <> []);
  List.iter
    (fun x ->
      Alcotest.(check bool) "every explanation names a concrete cause" true
        (Explain.causes x <> []);
      (* Every cause is one of the injected faults, rendered concretely. *)
      List.iter
        (fun c ->
          let s = Explain.cause_to_string c in
          Alcotest.(check bool) "cause names a link or a node" true
            (String.length s > 0))
        (Explain.causes x))
    xs

let test_explain_deterministic () =
  let run () =
    let o = failing_li_hudak_outcome () in
    String.concat "\n"
      (List.map
         (fun x -> Json.to_string (Explain.to_json x))
         o.Conformance.fo_explanations)
  in
  Alcotest.(check string) "same seed, byte-identical explanations" (run ()) (run ())

let test_sc_abd_nothing_to_explain () =
  for seed = 0 to 5 do
    List.iter
      (fun workload ->
        let o =
          Conformance.run_one_faulted ~explain:true ~protocol:"sc_abd" ~driver
            ~workload ~seed ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "sc_abd survives seed %d" seed)
          false
          (Conformance.fault_outcome_failed o);
        Alcotest.(check int)
          (Printf.sprintf "sc_abd has nothing to explain at seed %d" seed)
          0
          (List.length o.Conformance.fo_explanations))
      [ Conformance.Racy_poll; Conformance.Lock_ladder ]
  done

(* --- flight recorder neutrality: the recorder must never change what the
   run does, only what the trace remembers --- *)

let test_recorder_schedule_neutral () =
  let fingerprint cap =
    let o =
      Conformance.run_one_faulted ?trace_capacity:cap ~protocol:"li_hudak"
        ~driver ~workload:Conformance.Racy_poll ~seed:1 ()
    in
    (o.Conformance.fo_fingerprint, o.Conformance.fo_stalled,
     o.Conformance.fo_dropped)
  in
  let unbounded = fingerprint None in
  Alcotest.(check bool) "capacity 256 is schedule-neutral" true
    (fingerprint (Some 256) = unbounded);
  Alcotest.(check bool) "capacity 64 is schedule-neutral" true
    (fingerprint (Some 64) = unbounded)

let test_recorder_bounds_app_trace () =
  (* Monitored jacobi runs, 25 engine tie seeds, with and without the
     recorder: identical results and event counts at every seed, trace
     memory bounded by the ring. *)
  let run ~seed cap =
    let captured = ref None in
    let observe dsm =
      captured := Some dsm;
      Dsmpm2_core.Monitor.enable dsm true;
      Option.iter (Trace.set_capacity (Dsmpm2_core.Monitor.trace dsm)) cap
    in
    let r =
      Dsmpm2_apps.Jacobi.run
        {
          Dsmpm2_apps.Jacobi.default with
          size = 16;
          iterations = 3;
          tie_seed = Some seed;
          observe = Some observe;
        }
    in
    match !captured with
    | Some dsm -> (r, Dsmpm2_core.Monitor.trace dsm)
    | None -> Alcotest.fail "jacobi did not expose its runtime"
  in
  for seed = 0 to 24 do
    let r0, tr0 = run ~seed None in
    let r1, tr1 = run ~seed (Some 64) in
    let label s = Printf.sprintf "%s (seed %d)" s seed in
    Alcotest.(check bool) (label "same checksum") true
      (r0.Dsmpm2_apps.Jacobi.checksum = r1.Dsmpm2_apps.Jacobi.checksum);
    Alcotest.(check (float 0.0001)) (label "same simulated time")
      r0.Dsmpm2_apps.Jacobi.time_ms r1.Dsmpm2_apps.Jacobi.time_ms;
    Alcotest.(check int) (label "same events recorded") (Trace.recorded tr0)
      (Trace.recorded tr1);
    Alcotest.(check bool) (label "trace bounded") true (Trace.length tr1 <= 64);
    Alcotest.(check bool) (label "ring actually evicted") true
      (Trace.evicted tr1 > 0);
    Alcotest.(check int) (label "unbounded run evicts nothing") 0
      (Trace.evicted tr0)
  done

let () =
  Alcotest.run "explain"
    [
      ( "slicing",
        [
          Alcotest.test_case "span drop blamed" `Quick test_span_drop_blamed;
          Alcotest.test_case "later faults not blamed" `Quick
            test_causes_respect_target_instant;
          Alcotest.test_case "crash window blamed" `Quick test_crash_window_blamed;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "li_hudak failure explained" `Quick
            test_li_hudak_failure_explained;
          Alcotest.test_case "explanations deterministic" `Quick
            test_explain_deterministic;
          Alcotest.test_case "sc_abd nothing to explain" `Quick
            test_sc_abd_nothing_to_explain;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "schedule neutral" `Quick test_recorder_schedule_neutral;
          Alcotest.test_case "bounds an application trace" `Quick
            test_recorder_bounds_app_trace;
        ] );
    ]

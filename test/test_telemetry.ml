(* The online telemetry engine and its foundations: the quantile sketch's
   relative-error and merge guarantees (QCheck), Stats.merge rollups,
   online/post-mortem classifier agreement across every protocol and
   conformance workload, schedule transparency of telemetry + sampling,
   the exactness of deterministic head-based span sampling against an
   unsampled reference run, bounded-trace hot-page accounting, and the
   advice.page alert's JSONL round trip. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_experiments

(* --- the sketch: relative-error bound on adversarial distributions --- *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  sorted.(int_of_float (q *. float_of_int (n - 1)))

let quantile_ladder = [ 0.; 0.25; 0.5; 0.9; 0.99; 0.999; 1. ]

(* Distributions chosen to stress the log bucketing: uniform (dense
   mid-range buckets), exponential tails (many decades), duplicate
   clusters (single-bucket pileups) and near-zero-threshold values. *)
let gen_samples =
  let open QCheck.Gen in
  let uniform = map (fun i -> (float_of_int i /. 7.) +. 0.001) (0 -- 1_000_000) in
  let heavy = map (fun i -> exp (float_of_int i /. 50.)) (0 -- 500) in
  let clustered = map (fun i -> float_of_int (1 + (i mod 3)) *. 1e6) (0 -- 1000) in
  let tiny = map (fun i -> 1e-8 +. (float_of_int i *. 1e-9)) (0 -- 100) in
  let dist = oneof [ uniform; heavy; clustered; tiny ] in
  let chunk = list_size (1 -- 300) dist in
  oneof [ chunk; map2 ( @ ) chunk chunk ]

let gen_alpha = QCheck.Gen.oneofl [ 0.005; 0.01; 0.05 ]

let arbitrary_sketch_input =
  QCheck.make
    QCheck.Gen.(pair gen_alpha gen_samples)
    ~print:(fun (alpha, xs) ->
      Printf.sprintf "alpha=%g n=%d head=[%s]" alpha (List.length xs)
        (String.concat "; "
           (List.map (Printf.sprintf "%g") (List.filteri (fun i _ -> i < 8) xs))))

let prop_relative_error =
  QCheck.Test.make ~name:"sketch quantiles within the relative-error bound"
    ~count:300 arbitrary_sketch_input (fun (alpha, xs) ->
      let s = Sketch.create ~alpha () in
      List.iter (Sketch.add s) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      List.for_all
        (fun q ->
          let exact = exact_quantile sorted q in
          let est = Sketch.quantile s q in
          Float.abs (est -. exact)
          <= (alpha *. exact) +. (1e-6 *. exact) +. 1e-9)
        quantile_ladder)

let prop_merge_is_concat =
  QCheck.Test.make
    ~name:"sketch merge = sketch of the concatenated stream" ~count:300
    (QCheck.pair arbitrary_sketch_input
       (QCheck.make gen_samples ~print:(fun xs ->
            Printf.sprintf "n=%d" (List.length xs))))
    (fun ((alpha, xs), ys) ->
      let a = Sketch.create ~alpha () and b = Sketch.create ~alpha () in
      List.iter (Sketch.add a) xs;
      List.iter (Sketch.add b) ys;
      let merged = Sketch.merge a b in
      let direct = Sketch.create ~alpha () in
      List.iter (Sketch.add direct) (xs @ ys);
      Sketch.count merged = Sketch.count direct
      && Sketch.buckets merged = Sketch.buckets direct
      && Sketch.min_value merged = Sketch.min_value direct
      && Sketch.max_value merged = Sketch.max_value direct
      && Float.abs (Sketch.sum merged -. Sketch.sum direct)
         <= 1e-6 *. Float.abs (Sketch.sum direct)
      && List.for_all
           (fun q -> Sketch.quantile merged q = Sketch.quantile direct q)
           quantile_ladder)

let test_sketch_rejects_mismatched_alpha () =
  let a = Sketch.create ~alpha:0.01 () and b = Sketch.create ~alpha:0.02 () in
  match Sketch.merge a b with
  | _ -> Alcotest.fail "merging sketches with different alphas must raise"
  | exception Invalid_argument _ -> ()

(* --- Stats.merge: empty-merge identity and exact bucket alignment --- *)

let test_stats_merge_identity () =
  let s = Stats.create () in
  Stats.add s "msgs" 7;
  Stats.incr s "faults";
  Stats.add_span s "latency" (Time.of_us 3.);
  Stats.add_span s "latency" (Time.of_us 900.);
  let check label m =
    Alcotest.(check string) label
      (Json.to_string (Stats.to_json s))
      (Json.to_string (Stats.to_json m))
  in
  check "merge with fresh right identity" (Stats.merge s (Stats.create ()));
  check "merge with fresh left identity" (Stats.merge (Stats.create ()) s)

let test_stats_merge_buckets_align () =
  let s1 = Stats.create () and s2 = Stats.create () in
  List.iter (fun us -> Stats.add_span s1 "x" (Time.of_us us)) [ 1.; 10. ];
  List.iter (fun us -> Stats.add_span s2 "x" (Time.of_us us)) [ 10.; 5000. ];
  Stats.add s1 "c" 2;
  Stats.add s2 "c" 5;
  let m = Stats.merge s1 s2 in
  Alcotest.(check int) "counters summed" 7 (Stats.count m "c");
  Alcotest.(check int) "samples summed" 4 (Stats.span_samples m "x");
  Alcotest.(check (float 1e-9)) "total summed"
    Time.(to_us (Stats.span_total s1 "x" + Stats.span_total s2 "x"))
    (Time.to_us (Stats.span_total m "x"));
  Alcotest.(check (float 1e-9)) "max is the larger input"
    (Time.to_us (Time.max (Stats.span_max s1 "x") (Stats.span_max s2 "x")))
    (Time.to_us (Stats.span_max m "x"));
  (* Every t shares the fixed bucket bounds, so the merged histogram is
     the exact element-wise sum — no re-bucketing, no approximation. *)
  let h1 = Stats.span_histogram s1 "x"
  and h2 = Stats.span_histogram s2 "x"
  and hm = Stats.span_histogram m "x" in
  Array.iteri
    (fun i (_, c) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket %d is the sum" i)
        (snd h1.(i) + snd h2.(i))
        c)
    hm

(* --- online classifier = post-mortem classifier, everywhere --- *)

let pattern_pair p = (p.Analyze.pg_page, Analyze.pattern_to_string p.Analyze.pg_pattern)

let test_agrees_with_analyze () =
  List.iter
    (fun protocol ->
      List.iter
        (fun workload ->
          let _, dsm =
            Conformance.run_one_traced ~protocol ~driver:Driver.bip_myrinet
              ~workload ~seed:0
          in
          let tele =
            match Telemetry.find dsm with
            | Some t -> t
            | None -> Alcotest.fail "watchdog did not attach telemetry"
          in
          let label =
            Printf.sprintf "%s/%s" protocol
              (Conformance.workload_name workload)
          in
          let online =
            List.map
              (fun (page, p) -> (page, Telemetry.pattern_to_string p))
              (Telemetry.classification tele)
          in
          let post =
            List.sort compare
              (List.map pattern_pair (Analyze.pages (Analyze.analyze (Monitor.trace dsm))))
          in
          Alcotest.(check (list (pair int string)))
            (label ^ ": same classification") post online)
        Conformance.workloads)
    Conformance.all_protocols

(* --- schedule transparency: telemetry + sampling never perturb a run --- *)

let jacobi ?observe seed =
  Dsmpm2_apps.Jacobi.run
    {
      Dsmpm2_apps.Jacobi.default with
      protocol = "hbrc_mw";
      nodes = 4;
      size = 16;
      iterations = 2;
      tie_seed = Some seed;
      observe;
    }

let test_schedule_transparent_25_seeds () =
  for seed = 0 to 24 do
    let bare = jacobi seed in
    let observe dsm =
      Monitor.enable dsm true;
      let tr = Monitor.trace dsm in
      Trace.set_capacity tr 128;
      Trace.set_sampling tr ~seed:1 ~keep_pct:20.;
      ignore (Telemetry.attach dsm)
    in
    let instrumented = jacobi ~observe seed in
    (* The whole result record — simulated time, checksum, fault and
       message counts — is the schedule fingerprint. *)
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: identical run" seed)
      true
      (bare = instrumented)
  done

(* --- sampling: deterministic, whole-span, exact against a reference --- *)

let sampleable = function
  | Trace.Fault _ | Trace.Page_request _ | Trace.Page_send _
  | Trace.Page_install _ | Trace.Invalidate _ | Trace.Diff _ | Trace.Lock _
  | Trace.Barrier _ | Trace.Migration _ ->
      true
  | _ -> false

let traced_jacobi ?sampling seed =
  let captured = ref None in
  let observe dsm =
    Monitor.enable dsm true;
    Option.iter
      (fun (sample_seed, pct) ->
        Trace.set_sampling (Monitor.trace dsm) ~seed:sample_seed ~keep_pct:pct)
      sampling;
    ignore (Telemetry.attach dsm);
    captured := Some dsm
  in
  let result = jacobi ~observe seed in
  match !captured with
  | Some dsm -> (result, dsm)
  | None -> Alcotest.fail "jacobi did not expose its runtime"

let test_sampling_keeps_whole_spans_exactly () =
  let ref_result, ref_dsm = traced_jacobi 7 in
  let ref_events = Trace.events (Monitor.trace ref_dsm) in
  let sampled_result, sampled_dsm = traced_jacobi ~sampling:(3, 30.) 7 in
  let tr = Trace.events (Monitor.trace sampled_dsm) in
  Alcotest.(check bool) "sampling does not change the run" true
    (ref_result = sampled_result);
  (* The stored trace is exactly the reference stream filtered by the pure
     per-span keep decision: whole spans survive or vanish together, and
     alert/fault/message kinds are always kept. *)
  let expected =
    List.filter
      (fun ((e : Trace.entry), ev) ->
        (not (sampleable ev))
        || e.Trace.span = Trace.no_span
        || Trace.span_kept (Monitor.trace sampled_dsm) e.Trace.span)
      ref_events
  in
  Alcotest.(check int) "stored trace is the predicted subset" 0
    (compare expected tr);
  Alcotest.(check int) "sampled_out accounts for every dropped event"
    (List.length ref_events - List.length tr)
    (Trace.sampled_out (Monitor.trace sampled_dsm));
  (* Telemetry saw the full stream regardless. *)
  (match Telemetry.find sampled_dsm with
  | None -> Alcotest.fail "telemetry missing"
  | Some tele ->
      Alcotest.(check int) "telemetry saw every emission"
        (List.length ref_events) (Telemetry.events_seen tele));
  (* Same seed, same decisions: a replay stores the identical subset. *)
  let _, replay_dsm = traced_jacobi ~sampling:(3, 30.) 7 in
  Alcotest.(check int) "replay stores the identical subset" 0
    (compare tr (Trace.events (Monitor.trace replay_dsm)))

let test_sampling_telemetry_agreement () =
  (* Online classification under aggressive sampling + a tiny ring equals
     the post-mortem classification of the unsampled reference trace. *)
  let _, ref_dsm = traced_jacobi 5 in
  let post =
    List.sort compare
      (List.map pattern_pair
         (Analyze.pages (Analyze.analyze (Monitor.trace ref_dsm))))
  in
  let captured = ref None in
  let observe dsm =
    Monitor.enable dsm true;
    let tr = Monitor.trace dsm in
    Trace.set_capacity tr 64;
    Trace.set_sampling tr ~seed:9 ~keep_pct:5.;
    ignore (Telemetry.attach dsm);
    captured := Some dsm
  in
  ignore (jacobi ~observe 5);
  match !captured with
  | None -> Alcotest.fail "jacobi did not expose its runtime"
  | Some dsm ->
      let tele = Option.get (Telemetry.find dsm) in
      let online =
        List.map
          (fun (page, p) -> (page, Telemetry.pattern_to_string p))
          (Telemetry.classification tele)
      in
      Alcotest.(check (list (pair int string)))
        "classification exact despite 5% sampling and a 64-event ring" post
        online;
      Alcotest.(check bool) "the ring really was under pressure" true
        (Trace.length (Monitor.trace dsm) <= 64)

(* --- bounded trace, hot pages, snapshot --- *)

let test_capped_trace_hot_pages () =
  let captured = ref None in
  let wd = ref None in
  let observe dsm =
    Monitor.enable dsm true;
    let tr = Monitor.trace dsm in
    Trace.set_capacity tr 256;
    Trace.set_sampling tr ~seed:0 ~keep_pct:25.;
    wd := Some (Watchdog.attach dsm);
    captured := Some dsm
  in
  ignore
    (Dsmpm2_apps.Jacobi.run
       {
         Dsmpm2_apps.Jacobi.default with
         protocol = "li_hudak";
         nodes = 8;
         size = 32;
         iterations = 3;
         tie_seed = Some 0;
         observe = Some observe;
       });
  let dsm = Option.get !captured in
  let tele = Watchdog.telemetry (Option.get !wd) in
  let tr = Monitor.trace dsm in
  Alcotest.(check bool) "ring stays under the cap" true (Trace.length tr <= 256);
  Alcotest.(check bool) "the run emitted far more than the cap" true
    (Telemetry.events_seen tele > 256);
  let profiles = Telemetry.Pages.profiles (Telemetry.pages tele) in
  Alcotest.(check bool) "hot pages classified" true (profiles <> []);
  Alcotest.(check bool) "boundary pages are shared, not private" true
    (List.exists
       (fun p -> p.Telemetry.pr_pattern <> Telemetry.Private)
       profiles);
  (* The dsm top snapshot is valid JSON and carries the trace pressure. *)
  let json = Telemetry.to_json tele in
  (match Json.of_string (Json.to_string json) with
  | Error msg -> Alcotest.failf "snapshot is not valid JSON: %s" msg
  | Ok _ -> ());
  match Json.member "trace" json with
  | None -> Alcotest.fail "snapshot has no trace accounting"
  | Some t ->
      Alcotest.(check bool) "snapshot reports sampling pressure" true
        (match Option.bind (Json.member "sampled_out" t) Json.to_int with
        | Some n -> n > 0
        | None -> false)

(* --- advice.page alerts round-trip through JSONL --- *)

let test_advice_alert_jsonl_roundtrip () =
  let wd = ref None in
  let captured = ref None in
  let observe dsm =
    Monitor.enable dsm true;
    wd := Some (Watchdog.attach dsm);
    captured := Some dsm
  in
  (* li_hudak bounces whole pages, so boundary pages classify as
     producer-consumer/migratory — patterns whose recommendation differs
     from the running protocol, which is what makes advice fire. *)
  ignore
    (Dsmpm2_apps.Jacobi.run
       {
         Dsmpm2_apps.Jacobi.default with
         protocol = "li_hudak";
         nodes = 4;
         size = 16;
         iterations = 3;
         tie_seed = Some 0;
         observe = Some observe;
       });
  let w = Option.get !wd and dsm = Option.get !captured in
  let advice =
    List.filter (fun a -> a.Watchdog.al_kind = "advice.page") (Watchdog.alerts w)
  in
  Alcotest.(check bool) "jacobi draws protocol advice" true (advice <> []);
  Alcotest.(check bool) "advice names a ~protocol attribute" true
    (List.for_all
       (fun a ->
         a.Watchdog.al_severity = Watchdog.Info
         && String.length a.Watchdog.al_detail > 0)
       advice);
  let path = Filename.temp_file "dsm_advice" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.save_jsonl path (Monitor.trace dsm);
      match Trace.load_jsonl path with
      | Error msg -> Alcotest.failf "trace dump unreadable: %s" msg
      | Ok loaded ->
          let details tr =
            List.filter_map
              (fun (_, ev) ->
                match ev with
                | Trace.Alert { kind = "advice.page"; detail; _ } -> Some detail
                | _ -> None)
              (Trace.events tr)
          in
          Alcotest.(check (list string)) "advice alerts survive the round trip"
            (details (Monitor.trace dsm))
            (details loaded);
          Alcotest.(check bool) "round-tripped advice is non-empty" true
            (details loaded <> []))

let () =
  Alcotest.run "telemetry"
    [
      ( "sketch",
        [
          QCheck_alcotest.to_alcotest prop_relative_error;
          QCheck_alcotest.to_alcotest prop_merge_is_concat;
          Alcotest.test_case "mismatched alpha rejected" `Quick
            test_sketch_rejects_mismatched_alpha;
        ] );
      ( "stats merge",
        [
          Alcotest.test_case "empty merge identity" `Quick
            test_stats_merge_identity;
          Alcotest.test_case "bucket alignment" `Quick
            test_stats_merge_buckets_align;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "online = post-mortem, all protocols" `Quick
            test_agrees_with_analyze;
          Alcotest.test_case "exact under sampling + tiny ring" `Quick
            test_sampling_telemetry_agreement;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "25-seed jacobi schedule pin" `Quick
            test_schedule_transparent_25_seeds;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "whole spans, exact subset, deterministic" `Quick
            test_sampling_keeps_whole_spans_exactly;
        ] );
      ( "hot pages",
        [
          Alcotest.test_case "capped trace still classifies" `Quick
            test_capped_trace_hot_pages;
        ] );
      ( "alerts",
        [
          Alcotest.test_case "advice.page JSONL round trip" `Quick
            test_advice_alert_jsonl_roundtrip;
        ] );
    ]

(* Tests of the PM2 layer: Marcel threads, RPC, isomalloc, migration. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2

let us = Alcotest.float 0.01

let with_pm2 ?(nodes = 2) ?(driver = Driver.bip_myrinet) f =
  let pm2 = Pm2.create ~nodes ~driver () in
  f pm2;
  pm2

(* --- Marcel --- *)

let test_spawn_self_join () =
  let pm2 = Pm2.create ~nodes:3 ~driver:Driver.bip_myrinet () in
  let marcel = Pm2.marcel pm2 in
  let seen = ref (-1) in
  let th =
    Pm2.spawn pm2 ~node:2 (fun () ->
        let self = Marcel.self marcel in
        seen := Marcel.node self)
  in
  let joined = ref false in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         Marcel.join marcel th;
         joined := true));
  Pm2.run pm2;
  Alcotest.(check int) "self node" 2 !seen;
  Alcotest.(check bool) "joined" true !joined;
  Alcotest.(check bool) "dead" false (Marcel.is_alive th)

let test_self_outside_thread_fails () =
  let pm2 = Pm2.create ~nodes:1 ~driver:Driver.bip_myrinet () in
  Alcotest.check_raises "no self outside threads"
    (Failure "Marcel.self: not running inside a Marcel thread") (fun () ->
      ignore (Marcel.self (Pm2.marcel pm2)))

let test_charge_then_compute_accounts () =
  let final = ref 0. in
  let pm2 =
    with_pm2 (fun pm2 ->
        ignore
          (Pm2.spawn pm2 ~node:0 (fun () ->
               Marcel.charge (Pm2.marcel pm2) 30.;
               Marcel.charge (Pm2.marcel pm2) 12.;
               (* compute flushes the 42us of pending work plus its own 8 *)
               Marcel.compute (Pm2.marcel pm2) 8.;
               final := Pm2.now_us pm2)))
  in
  Pm2.run pm2;
  Alcotest.check us "pending work paid" 50. !final

let test_pending_charges_paid_at_exit () =
  let pm2 =
    with_pm2 (fun pm2 ->
        ignore (Pm2.spawn pm2 ~node:0 (fun () -> Marcel.charge (Pm2.marcel pm2) 75.)))
  in
  Pm2.run pm2;
  Alcotest.check us "CPU busy for the charged work" 75.
    (Time.to_us (Cpu.busy_time (Marcel.cpu (Pm2.marcel pm2) 0)))

let test_mutex_mutual_exclusion () =
  let pm2 = Pm2.create ~nodes:1 ~driver:Driver.bip_myrinet () in
  let marcel = Pm2.marcel pm2 in
  let mu = Marcel.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Pm2.spawn pm2 ~node:0 (fun () ->
           Marcel.Mutex.lock marcel mu;
           incr inside;
           max_inside := max !max_inside !inside;
           Marcel.compute marcel 10.;
           decr inside;
           Marcel.Mutex.unlock marcel mu))
  done;
  Pm2.run pm2;
  Alcotest.(check int) "never two inside" 1 !max_inside

let test_mutex_trylock () =
  let pm2 = Pm2.create ~nodes:1 ~driver:Driver.bip_myrinet () in
  let marcel = Pm2.marcel pm2 in
  let mu = Marcel.Mutex.create () in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         Alcotest.(check bool) "first trylock" true (Marcel.Mutex.try_lock marcel mu);
         Alcotest.(check bool) "second fails" false (Marcel.Mutex.try_lock marcel mu);
         Marcel.Mutex.unlock marcel mu;
         Alcotest.(check bool) "after unlock" true (Marcel.Mutex.try_lock marcel mu)));
  Pm2.run pm2

let test_cond_signal_and_broadcast () =
  let pm2 = Pm2.create ~nodes:1 ~driver:Driver.bip_myrinet () in
  let marcel = Pm2.marcel pm2 in
  let mu = Marcel.Mutex.create () and cv = Marcel.Cond.create () in
  let ready = ref false and woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Pm2.spawn pm2 ~node:0 (fun () ->
           Marcel.Mutex.lock marcel mu;
           while not !ready do
             Marcel.Cond.wait marcel cv mu
           done;
           incr woken;
           Marcel.Mutex.unlock marcel mu))
  done;
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         Marcel.compute marcel 5.;
         Marcel.Mutex.lock marcel mu;
         ready := true;
         Marcel.Cond.broadcast marcel cv;
         Marcel.Mutex.unlock marcel mu));
  Pm2.run pm2;
  Alcotest.(check int) "all woken" 3 !woken

let test_sem () =
  let pm2 = Pm2.create ~nodes:1 ~driver:Driver.bip_myrinet () in
  let marcel = Pm2.marcel pm2 in
  let sem = Marcel.Sem.create 2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 6 do
    ignore
      (Pm2.spawn pm2 ~node:0 (fun () ->
           Marcel.Sem.acquire marcel sem;
           incr inside;
           max_inside := max !max_inside !inside;
           Marcel.compute marcel 10.;
           decr inside;
           Marcel.Sem.release marcel sem))
  done;
  Pm2.run pm2;
  Alcotest.(check int) "at most 2 inside" 2 !max_inside

(* --- Isoalloc --- *)

let test_isoalloc_basics () =
  let iso = Isoalloc.create ~page_size:4096 () in
  let a = Isoalloc.alloc iso 100 in
  let b = Isoalloc.alloc iso 16 in
  Alcotest.(check bool) "null page reserved" true (a >= 4096);
  Alcotest.(check bool) "no overlap" true (b >= a + 100);
  let p = Isoalloc.alloc_pages iso 2 in
  Alcotest.(check int) "page aligned" 0 (p mod 4096);
  Alcotest.(check int) "bytes tracked" (100 + 16 + 8192) (Isoalloc.allocated_bytes iso)

let prop_isoalloc_no_overlap =
  QCheck.Test.make ~name:"isomalloc allocations never overlap" ~count:100
    QCheck.(small_list (int_range 1 10_000))
    (fun sizes ->
      let iso = Isoalloc.create ~page_size:4096 () in
      let ranges = List.map (fun n -> (Isoalloc.alloc iso n, n)) sizes in
      let sorted = List.sort compare ranges in
      let rec ok = function
        | (a1, n1) :: ((a2, _) :: _ as rest) -> a1 + n1 <= a2 && ok rest
        | [ _ ] | [] -> true
      in
      ok sorted && List.for_all (fun (a, _) -> a mod 8 = 0) ranges)

let test_isoalloc_rejects_bad_input () =
  Alcotest.check_raises "power of two"
    (Invalid_argument "Isoalloc.create: page_size must be a power of two")
    (fun () -> ignore (Isoalloc.create ~page_size:1000 ()));
  let iso = Isoalloc.create ~page_size:4096 () in
  Alcotest.check_raises "positive size"
    (Invalid_argument "Isoalloc.alloc: size must be positive") (fun () ->
      ignore (Isoalloc.alloc iso 0))

(* --- RPC --- *)

type Rpc.payload += Number of int

let test_rpc_call_roundtrip () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let rpc = Pm2.rpc pm2 in
  let handler_node = ref (-1) in
  let service =
    Rpc.register rpc ~name:"double" (fun ~src:_ payload ->
        handler_node := Pm2.self_node pm2;
        match payload with
        | Number n -> (Number (2 * n), Driver.Request)
        | _ -> (Rpc.Unit, Driver.Request))
  in
  let result = ref 0 and finished_at = ref 0. in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         (match Rpc.call rpc ~dst:1 ~service ~cost:Driver.Request (Number 21) with
         | Number n -> result := n
         | _ -> ());
         finished_at := Pm2.now_us pm2));
  Pm2.run pm2;
  Alcotest.(check int) "doubled" 42 !result;
  Alcotest.(check int) "handler ran on destination" 1 !handler_node;
  (* request (23us) + reply (23us) *)
  Alcotest.check us "round trip time" 46. !finished_at;
  Alcotest.(check int) "one call" 1 (Rpc.calls_made rpc)

let test_rpc_handler_can_block () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let rpc = Pm2.rpc pm2 in
  let service =
    Rpc.register rpc ~name:"slow" (fun ~src:_ _ ->
        Marcel.compute (Pm2.marcel pm2) 100.;
        (Rpc.Unit, Driver.Request))
  in
  let finished_at = ref 0. in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         ignore (Rpc.call rpc ~dst:1 ~service ~cost:Driver.Request Rpc.Unit);
         finished_at := Pm2.now_us pm2));
  Pm2.run pm2;
  Alcotest.check us "handler compute included" 146. !finished_at

let test_rpc_oneway () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let rpc = Pm2.rpc pm2 in
  let got = ref 0 in
  let service =
    Rpc.register rpc ~name:"notify" (fun ~src payload ->
        (match payload with Number n -> got := n + src | _ -> ());
        (Rpc.Unit, Driver.Request))
  in
  let sent_then = ref 0. in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         Rpc.oneway rpc ~dst:1 ~service ~cost:Driver.Request (Number 7);
         sent_then := Pm2.now_us pm2));
  Pm2.run pm2;
  Alcotest.(check int) "delivered with source" 7 !got;
  Alcotest.check us "oneway does not block" 0. !sent_then

let test_rpc_service_name () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let rpc = Pm2.rpc pm2 in
  let s = Rpc.register rpc ~name:"a.service" (fun ~src:_ _ -> (Rpc.Unit, Driver.Request)) in
  Alcotest.(check string) "name kept" "a.service" (Rpc.service_name rpc s)

(* --- RPC retry under faults --- *)

(* A jitter-free policy so the retry timings below are exact. *)
let crisp_retry ~timeout_us ~retries =
  { Rpc.timeout_us; retries; backoff = 1.; jitter_us = 0. }

let down ~node ~from_us ~to_us =
  { Fault_plan.w_node = node; w_down = Time.of_us from_us; w_up = Time.of_us to_us }

let test_rpc_retry_recovers_lost_request () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let rpc = Pm2.rpc pm2 in
  (* Node 1 is down when the first request would arrive (23us): the request
     is blackholed, the deadline fires, the retransmission gets through. *)
  Network.set_fault_plan (Pm2.network pm2)
    (Fault_plan.create ~windows:[ down ~node:1 ~from_us:0. ~to_us:100. ] ());
  Rpc.set_retry rpc (Some (crisp_retry ~timeout_us:200. ~retries:3));
  let executions = ref 0 in
  let service =
    Rpc.register rpc ~name:"double" (fun ~src:_ payload ->
        incr executions;
        match payload with
        | Number n -> (Number (2 * n), Driver.Request)
        | _ -> (Rpc.Unit, Driver.Request))
  in
  let result = ref 0 and finished_at = ref 0. in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         (match Rpc.call rpc ~dst:1 ~service ~cost:Driver.Request (Number 21) with
         | Number n -> result := n
         | _ -> ());
         finished_at := Pm2.now_us pm2));
  Pm2.run pm2;
  Alcotest.(check int) "reply still correct" 42 !result;
  Alcotest.(check int) "handler ran once" 1 !executions;
  Alcotest.(check int) "one retransmission" 1 (Rpc.retransmissions rpc);
  Alcotest.(check int) "the blackholed request was tallied" 1
    (Network.messages_dropped (Pm2.network pm2));
  (* deadline at 200us, retransmitted request 23us, reply 23us *)
  Alcotest.check us "retry latency" 246. !finished_at

let test_rpc_timeout_raised () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let rpc = Pm2.rpc pm2 in
  (* Node 1 never comes back: every attempt is blackholed and the caller
     must get a typed Timeout instead of suspending forever. *)
  Network.set_fault_plan (Pm2.network pm2)
    (Fault_plan.create ~windows:[ down ~node:1 ~from_us:0. ~to_us:1_000_000. ] ());
  Rpc.set_retry rpc (Some (crisp_retry ~timeout_us:100. ~retries:2));
  let service =
    Rpc.register rpc ~name:"void" (fun ~src:_ _ -> (Rpc.Unit, Driver.Request))
  in
  let caught = ref None and finished_at = ref 0. in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         (try ignore (Rpc.call rpc ~dst:1 ~service ~cost:Driver.Request Rpc.Unit)
          with Rpc.Timeout { service; dst; attempts } ->
            caught := Some (service, dst, attempts));
         finished_at := Pm2.now_us pm2));
  Pm2.run pm2;
  (match !caught with
  | Some (name, dst, attempts) ->
      Alcotest.(check string) "service named" "void" name;
      Alcotest.(check int) "destination named" 1 dst;
      Alcotest.(check int) "initial try + 2 retries" 3 attempts
  | None -> Alcotest.fail "expected Rpc.Timeout");
  Alcotest.(check int) "all attempts blackholed" 3
    (Network.messages_dropped (Pm2.network pm2));
  (* three deadlines of 100us each *)
  Alcotest.check us "fails fast" 300. !finished_at

let test_rpc_duplicate_suppressed () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let rpc = Pm2.rpc pm2 in
  (* The request gets through but node 0 is down when the reply lands
     (46us): the retransmission must be answered from the server's
     request-id cache without re-running the handler. *)
  Network.set_fault_plan (Pm2.network pm2)
    (Fault_plan.create ~windows:[ down ~node:0 ~from_us:40. ~to_us:60. ] ());
  Rpc.set_retry rpc (Some (crisp_retry ~timeout_us:200. ~retries:3));
  let executions = ref 0 in
  let service =
    Rpc.register rpc ~name:"bump" (fun ~src:_ payload ->
        incr executions;
        match payload with
        | Number n -> (Number (n + 1), Driver.Request)
        | _ -> (Rpc.Unit, Driver.Request))
  in
  let result = ref 0 in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         match Rpc.call rpc ~dst:1 ~service ~cost:Driver.Request (Number 9) with
         | Number n -> result := n
         | _ -> ()));
  Pm2.run pm2;
  Alcotest.(check int) "reply correct" 10 !result;
  Alcotest.(check int) "at-most-once execution" 1 !executions;
  Alcotest.(check int) "duplicate served from cache" 1
    (Rpc.duplicates_served rpc);
  Alcotest.(check int) "one retransmission" 1 (Rpc.retransmissions rpc)

let test_rpc_retry_deterministic_and_validated () =
  let finish seed =
    let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
    let rpc = Pm2.rpc pm2 in
    Network.set_fault_plan (Pm2.network pm2)
      (Fault_plan.create ~windows:[ down ~node:1 ~from_us:0. ~to_us:100. ] ());
    Rpc.set_retry rpc ~seed (Some Rpc.default_retry);
    let service =
      Rpc.register rpc ~name:"echo" (fun ~src:_ p -> (p, Driver.Request))
    in
    let finished_at = ref 0. in
    ignore
      (Pm2.spawn pm2 ~node:0 (fun () ->
           ignore (Rpc.call rpc ~dst:1 ~service ~cost:Driver.Request Rpc.Unit);
           finished_at := Pm2.now_us pm2));
    Pm2.run pm2;
    !finished_at
  in
  Alcotest.check us "same seed, same deadline jitter" (finish 5) (finish 5);
  let rpc = Pm2.rpc (Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet ()) in
  Alcotest.check_raises "zero timeout rejected"
    (Invalid_argument "Rpc.set_retry: timeout_us <= 0") (fun () ->
      Rpc.set_retry rpc (Some (crisp_retry ~timeout_us:0. ~retries:1)));
  Alcotest.check_raises "backoff below 1 rejected"
    (Invalid_argument "Rpc.set_retry: backoff < 1") (fun () ->
      Rpc.set_retry rpc
        (Some { Rpc.timeout_us = 100.; retries = 1; backoff = 0.5; jitter_us = 0. }))

(* --- migration --- *)

let test_migrate_cost_and_node () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.sisci_sci () in
  let arrived = ref (-1) and took = ref 0. in
  ignore
    (Pm2.spawn pm2 ~node:0 ~stack_bytes:1024 (fun () ->
         let t0 = Pm2.now_us pm2 in
         Pm2.migrate pm2 ~dst:1;
         took := Pm2.now_us pm2 -. t0;
         arrived := Pm2.self_node pm2));
  Pm2.run pm2;
  Alcotest.(check int) "thread moved" 1 !arrived;
  (* paper section 2.1: 62 us over SISCI/SCI for a minimal stack *)
  Alcotest.check us "migration cost" 62. !took;
  Alcotest.(check int) "counted" 1 (Pm2.migrations pm2)

let test_migrate_to_self_is_noop () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.sisci_sci () in
  let took = ref 99. in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         let t0 = Pm2.now_us pm2 in
         Pm2.migrate pm2 ~dst:0;
         took := Pm2.now_us pm2 -. t0));
  Pm2.run pm2;
  Alcotest.check us "free" 0. !took;
  Alcotest.(check int) "not counted" 0 (Pm2.migrations pm2)

let test_migrate_attached_data_costs () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.sisci_sci () in
  let took = ref 0. in
  ignore
    (Pm2.spawn pm2 ~node:0 ~stack_bytes:1024 ~attached_bytes:8192 (fun () ->
         let t0 = Pm2.now_us pm2 in
         Pm2.migrate pm2 ~dst:1;
         took := Pm2.now_us pm2 -. t0));
  Pm2.run pm2;
  (* 62 us for the minimal footprint + 8192 B * 0.0125 us/B *)
  Alcotest.check us "attached data travels too" (62. +. (8192. *. 0.0125)) !took

let test_compute_follows_migration () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.sisci_sci () in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         Pm2.migrate pm2 ~dst:1;
         Marcel.compute (Pm2.marcel pm2) 40.));
  Pm2.run pm2;
  Alcotest.check us "work lands on destination CPU" 40.
    (Time.to_us (Cpu.busy_time (Marcel.cpu (Pm2.marcel pm2) 1)));
  Alcotest.check us "origin CPU idle" 0.
    (Time.to_us (Cpu.busy_time (Marcel.cpu (Pm2.marcel pm2) 0)))

(* --- load balancer --- *)

let test_balancer_spreads_threads () =
  let pm2 = Pm2.create ~nodes:4 ~driver:Driver.bip_myrinet () in
  (* 8 compute-bound migratable workers, all dumped on node 0; the balancer
     must spread them out.  Workers hit a safe point between compute
     slices. *)
  let final = Array.make 8 (-1) in
  for i = 0 to 7 do
    ignore
      (Pm2.spawn pm2 ~migratable:true ~node:0 (fun () ->
           for _ = 1 to 40 do
             Marcel.compute (Pm2.marcel pm2) 1_000.;
             Pm2.migrate_if_requested pm2
           done;
           final.(i) <- Pm2.self_node pm2))
  done;
  let balancer = Balancer.start ~config:{ Balancer.interval_us = 2_000.; threshold = 1 } pm2 in
  Pm2.run pm2;
  Alcotest.(check bool) "balancer acted" true (Balancer.moves_requested balancer > 0);
  let per_node = Array.make 4 0 in
  Array.iter (fun n -> per_node.(n) <- per_node.(n) + 1) final;
  (* With 8 equal workers over 4 nodes, no node should end hosting more
     than half of them once balanced. *)
  Array.iteri
    (fun node count ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d not overloaded (%d workers)" node count)
        true (count <= 4))
    per_node

let test_balancer_improves_makespan () =
  let makespan balance =
    let pm2 = Pm2.create ~nodes:4 ~driver:Driver.bip_myrinet () in
    for _ = 0 to 7 do
      ignore
        (Pm2.spawn pm2 ~migratable:true ~node:0 (fun () ->
             for _ = 1 to 40 do
               Marcel.compute (Pm2.marcel pm2) 1_000.;
               Pm2.migrate_if_requested pm2
             done))
    done;
    if balance then ignore (Balancer.start pm2);
    Pm2.run pm2;
    Pm2.now_us pm2
  in
  let unbalanced = makespan false and balanced = makespan true in
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%.0fus) much faster than unbalanced (%.0fus)" balanced
       unbalanced)
    true
    (balanced < 0.6 *. unbalanced)

let test_balancer_ignores_non_migratable () =
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let final = ref (-1) in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         (* not migratable *)
         for _ = 1 to 20 do
           Marcel.compute (Pm2.marcel pm2) 1_000.;
           Pm2.migrate_if_requested pm2
         done;
         final := Pm2.self_node pm2));
  ignore (Balancer.start pm2);
  Pm2.run pm2;
  Alcotest.(check int) "thread stayed home" 0 !final

let test_balancer_terminates_with_workers () =
  (* The daemon must not keep the simulation alive after the last
     migratable thread dies. *)
  let pm2 = Pm2.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  ignore
    (Pm2.spawn pm2 ~migratable:true ~node:0 (fun () ->
         Marcel.compute (Pm2.marcel pm2) 100.));
  let balancer = Balancer.start pm2 in
  Pm2.run pm2;
  (* run returned: the engine drained *)
  Alcotest.(check bool) "daemon ticked at least once" true (Balancer.ticks balancer >= 1)

let () =
  Alcotest.run "pm2"
    [
      ( "marcel",
        [
          Alcotest.test_case "spawn/self/join" `Quick test_spawn_self_join;
          Alcotest.test_case "self outside thread" `Quick test_self_outside_thread_fails;
          Alcotest.test_case "charge accounting" `Quick test_charge_then_compute_accounts;
          Alcotest.test_case "charges paid at exit" `Quick
            test_pending_charges_paid_at_exit;
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_mutual_exclusion;
          Alcotest.test_case "trylock" `Quick test_mutex_trylock;
          Alcotest.test_case "cond broadcast" `Quick test_cond_signal_and_broadcast;
          Alcotest.test_case "semaphore" `Quick test_sem;
        ] );
      ( "isoalloc",
        [
          Alcotest.test_case "basics" `Quick test_isoalloc_basics;
          QCheck_alcotest.to_alcotest prop_isoalloc_no_overlap;
          Alcotest.test_case "input validation" `Quick test_isoalloc_rejects_bad_input;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "call round trip" `Quick test_rpc_call_roundtrip;
          Alcotest.test_case "blocking handler" `Quick test_rpc_handler_can_block;
          Alcotest.test_case "oneway" `Quick test_rpc_oneway;
          Alcotest.test_case "service name" `Quick test_rpc_service_name;
          Alcotest.test_case "retry recovers lost request" `Quick
            test_rpc_retry_recovers_lost_request;
          Alcotest.test_case "timeout raised" `Quick test_rpc_timeout_raised;
          Alcotest.test_case "duplicate suppressed" `Quick
            test_rpc_duplicate_suppressed;
          Alcotest.test_case "retry deterministic + validated" `Quick
            test_rpc_retry_deterministic_and_validated;
        ] );
      ( "migration",
        [
          Alcotest.test_case "cost and node change" `Quick test_migrate_cost_and_node;
          Alcotest.test_case "self migration free" `Quick test_migrate_to_self_is_noop;
          Alcotest.test_case "attached data" `Quick test_migrate_attached_data_costs;
          Alcotest.test_case "compute follows thread" `Quick
            test_compute_follows_migration;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "spreads threads" `Quick test_balancer_spreads_threads;
          Alcotest.test_case "improves makespan" `Quick test_balancer_improves_makespan;
          Alcotest.test_case "ignores non-migratable" `Quick
            test_balancer_ignores_non_migratable;
          Alcotest.test_case "terminates with workers" `Quick
            test_balancer_terminates_with_workers;
        ] );
    ]

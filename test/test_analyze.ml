(* The post-mortem trace analyzer: exact sharing-pattern classification on
   synthetic traces, critical-path stage arithmetic, lock/barrier contention
   profiles, the [of_jsonl] round-trip, and the advisor's end-to-end value
   (re-running TSP under the advised protocol reduces faults). *)

open Dsmpm2_sim
open Dsmpm2_experiments

let us = Time.of_us
let ev at ?(span = Trace.no_span) e = (us at, span, e)

let fault ~node ~page ~mode at span =
  ev at ~span (Trace.Fault { node; page; protocol = "li_hudak"; mode })

let send ~node ~page ~dst at span =
  ev at ~span
    (Trace.Page_send { node; page; protocol = "li_hudak"; dst; bytes = 4096; grant = "read" })

let pattern_of events page =
  let t = Trace.of_events events in
  match Analyze.page_profile (Analyze.analyze t) ~page with
  | Some p -> p.Analyze.pg_pattern
  | None -> Alcotest.failf "page %d has no profile" page

let check_pattern what expected events page =
  Alcotest.(check string)
    what
    (Analyze.pattern_to_string expected)
    (Analyze.pattern_to_string (pattern_of events page))

(* --- classification on synthetic traces --- *)

let test_classify_private () =
  check_pattern "one accessing node is private" Analyze.Private
    [ fault ~node:1 ~page:3 ~mode:"read" 10. 0; fault ~node:1 ~page:3 ~mode:"write" 20. 1 ]
    3

let test_classify_read_mostly () =
  check_pattern "remote readers, no writer" Analyze.Read_mostly
    [
      fault ~node:0 ~page:5 ~mode:"read" 10. 0;
      fault ~node:1 ~page:5 ~mode:"read" 20. 1;
      fault ~node:2 ~page:5 ~mode:"read" 30. 2;
    ]
    5

let test_classify_migratory () =
  (* Write access hands off 0 -> 1 -> 2: each node write-faults the page away
     from the previous writer. *)
  check_pattern "serial write handoffs migrate" Analyze.Migratory
    [
      fault ~node:0 ~page:7 ~mode:"write" 10. 0;
      fault ~node:1 ~page:7 ~mode:"write" 20. 1;
      send ~node:0 ~page:7 ~dst:1 25. 1;
      fault ~node:2 ~page:7 ~mode:"write" 30. 2;
      send ~node:1 ~page:7 ~dst:2 35. 2;
    ]
    7

let test_classify_false_sharing () =
  (* Two nodes' diffs land on the same page: they wrote disjoint words
     concurrently — the page itself is falsely shared. *)
  let diff ~sender at =
    ev at
      (Trace.Diff
         {
           node = 0;
           pages = 1;
           page_list = [ 9 ];
           bytes = 48;
           sender;
           release = true;
           protocol = "li_hudak";
         })
  in
  check_pattern "diffs from two nodes are false sharing" Analyze.False_sharing
    [
      fault ~node:1 ~page:9 ~mode:"write" 10. 0;
      fault ~node:2 ~page:9 ~mode:"write" 12. 1;
      diff ~sender:1 20.;
      diff ~sender:2 21.;
    ]
    9

let test_classify_producer_consumer () =
  check_pattern "one writer, re-fetching readers" Analyze.Producer_consumer
    [
      fault ~node:0 ~page:2 ~mode:"write" 10. 0;
      fault ~node:1 ~page:2 ~mode:"read" 20. 1;
      fault ~node:0 ~page:2 ~mode:"write" 30. 2;
      fault ~node:1 ~page:2 ~mode:"read" 40. 3;
    ]
    2

let test_classify_single_writer () =
  check_pattern "one writer, one cold reader" Analyze.Single_writer
    [
      fault ~node:0 ~page:4 ~mode:"write" 10. 0;
      fault ~node:1 ~page:4 ~mode:"read" 20. 1;
    ]
    4

let test_advisor_mapping () =
  let expect pat proto =
    Alcotest.(check (option string))
      (Analyze.pattern_to_string pat) proto
      (Analyze.recommended_protocol pat)
  in
  expect Analyze.Migratory (Some "migrate_thread");
  expect Analyze.False_sharing (Some "hbrc_mw");
  expect Analyze.Read_mostly (Some "write_update");
  expect Analyze.Producer_consumer (Some "write_update");
  expect Analyze.Single_writer (Some "erc_sw");
  expect Analyze.Private None;
  expect Analyze.Mixed None

(* --- critical-path stage arithmetic --- *)

let test_critical_path_stages () =
  let events =
    [
      fault ~node:0 ~page:1 ~mode:"read" 100. 7;
      ev 110. ~span:7
        (Trace.Page_request
           { node = 1; page = 1; protocol = "li_hudak"; mode = "read"; requester = 0 });
      send ~node:1 ~page:1 ~dst:0 140. 7;
      ev 180. ~span:7
        (Trace.Page_install
           { node = 0; page = 1; protocol = "li_hudak"; sender = 1; grant = "read" });
    ]
  in
  let a = Analyze.analyze (Trace.of_events events) in
  match Analyze.chains a with
  | [ c ] ->
      Alcotest.(check int) "span" 7 c.Analyze.ch_span;
      Alcotest.(check int) "hops" 1 c.Analyze.ch_hops;
      Alcotest.(check (float 0.01)) "total" 80. c.Analyze.ch_total_us;
      let stage name = List.assoc name c.Analyze.ch_stages in
      Alcotest.(check (float 0.01)) "request" 10. (stage "request");
      Alcotest.(check (float 0.01)) "serve" 30. (stage "serve");
      Alcotest.(check (float 0.01)) "transfer" 40. (stage "transfer");
      Alcotest.(check (float 0.01)) "install" 0. (stage "install");
      Alcotest.(check bool) "no migrate stage" true
        (not (List.mem_assoc "migrate" c.Analyze.ch_stages))
  | cs -> Alcotest.failf "expected one fault chain, got %d" (List.length cs)

let test_migration_stage () =
  let events =
    [
      fault ~node:0 ~page:1 ~mode:"write" 100. 3;
      ev 160. ~span:3 (Trace.Migration { thread = 5; src = 0; dst = 2 });
    ]
  in
  let a = Analyze.analyze (Trace.of_events events) in
  match Analyze.chains a with
  | [ c ] ->
      Alcotest.(check (float 0.01)) "migrate stage" 60.
        (List.assoc "migrate" c.Analyze.ch_stages)
  | cs -> Alcotest.failf "expected one chain, got %d" (List.length cs)

(* --- lock & barrier contention --- *)

let test_lock_contention () =
  let lock ~node ~op at = ev at (Trace.Lock { node; lock = 0; op }) in
  let events =
    [
      (* Node 1 waits 5us, holds 10us; node 2 requests at 12, granted at 30
         (18us wait, the contended acquisition), holds 5us. *)
      lock ~node:1 ~op:"request" 10.;
      lock ~node:2 ~op:"request" 12.;
      lock ~node:1 ~op:"granted" 15.;
      lock ~node:1 ~op:"released" 25.;
      lock ~node:2 ~op:"granted" 30.;
      lock ~node:2 ~op:"released" 35.;
      (* Manager-side bookkeeping ops must not pollute the client series. *)
      lock ~node:1 ~op:"acquire" 15.;
      lock ~node:1 ~op:"release" 25.;
    ]
  in
  let a = Analyze.analyze (Trace.of_events events) in
  match Analyze.locks a with
  | [ l ] ->
      Alcotest.(check int) "lock id" 0 l.Analyze.lk_lock;
      Alcotest.(check int) "nodes" 2 l.Analyze.lk_nodes;
      Alcotest.(check int) "acquisitions" 2 l.Analyze.lk_acquisitions;
      Alcotest.(check (float 0.01)) "total wait" 23. l.Analyze.lk_wait.Analyze.d_total_us;
      Alcotest.(check (float 0.01)) "max wait" 18. l.Analyze.lk_wait.Analyze.d_max_us;
      Alcotest.(check (float 0.01)) "total hold" 15. l.Analyze.lk_hold.Analyze.d_total_us
  | ls -> Alcotest.failf "expected one lock profile, got %d" (List.length ls)

let test_barrier_imbalance () =
  let arrive ~node at = ev at (Trace.Barrier { node; barrier = 1 }) in
  let events =
    [
      (* Two complete rounds of three parties: imbalances 8us and 2us. *)
      arrive ~node:0 10.; arrive ~node:1 12.; arrive ~node:2 18.;
      arrive ~node:2 30.; arrive ~node:0 31.; arrive ~node:1 32.;
      (* A trailing incomplete round must be ignored. *)
      arrive ~node:0 50.;
    ]
  in
  let a = Analyze.analyze (Trace.of_events events) in
  match Analyze.barriers a with
  | [ b ] ->
      Alcotest.(check int) "parties" 3 b.Analyze.br_parties;
      Alcotest.(check int) "complete rounds" 2 b.Analyze.br_rounds;
      Alcotest.(check (float 0.01)) "max imbalance" 8. b.Analyze.br_imbalance.Analyze.d_max_us;
      Alcotest.(check (float 0.01)) "mean imbalance" 5. b.Analyze.br_imbalance.Analyze.d_mean_us
  | bs -> Alcotest.failf "expected one barrier profile, got %d" (List.length bs)

(* --- of_jsonl round-trip over every event variant --- *)

let all_variant_events =
  [
    ev 0. ~span:0 (Trace.Fault { node = 1; page = 3; protocol = "li_hudak"; mode = "read" });
    ev 10. ~span:0
      (Trace.Page_request
         { node = 0; page = 3; protocol = "li_hudak"; mode = "write"; requester = 1 });
    ev 20. ~span:0
      (Trace.Page_send
         { node = 0; page = 3; protocol = "li_hudak"; dst = 1; bytes = 4096; grant = "RW" });
    ev 30. ~span:0
      (Trace.Page_install
         { node = 1; page = 3; protocol = "li_hudak"; sender = 0; grant = "R" });
    ev 40. (Trace.Invalidate { node = 2; page = 7; protocol = "hbrc_mw"; sender = 0 });
    ev 50.
      (Trace.Diff
         {
           node = 0;
           pages = 2;
           page_list = [ 4; 9 ];
           bytes = 96;
           sender = 3;
           release = true;
           protocol = "hbrc_mw";
         });
    ev 60. (Trace.Lock { node = 1; lock = 4; op = "request" });
    ev 70. (Trace.Barrier { node = 2; barrier = 0 });
    ev 80. ~span:2 (Trace.Migration { thread = 9; src = 0; dst = 3 });
    ev 90. (Trace.Message { category = "custom"; message = "free-form \"quoted\" text" });
  ]

let test_of_jsonl_round_trip () =
  let t = Trace.of_events all_variant_events in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Trace.to_jsonl fmt t;
  Format.pp_print_flush fmt ();
  match Trace.of_jsonl (Buffer.contents buf) with
  | Error msg -> Alcotest.failf "of_jsonl failed: %s" msg
  | Ok t' ->
      Alcotest.(check int) "same length" (Trace.length t) (Trace.length t');
      List.iter2
        (fun ((e : Trace.entry), ev) ((e' : Trace.entry), ev') ->
          Alcotest.(check int) "timestamp survives" e.Trace.at e'.Trace.at;
          Alcotest.(check int) "span survives" e.Trace.span e'.Trace.span;
          Alcotest.(check bool) "event survives" true (ev = ev'))
        (Trace.events t) (Trace.events t');
      (* Fresh spans minted after a reload must not collide with loaded ones. *)
      Trace.enable t' true;
      Alcotest.(check bool) "next span past loaded max" true (Trace.new_span t' > 2)

let test_of_jsonl_rejects_garbage () =
  let good =
    Json.to_string
      (Trace.event_to_json ~at:(us 1.) ~span:Trace.no_span
         (Trace.Barrier { node = 0; barrier = 0 }))
  in
  (match Trace.of_jsonl (good ^ "\nnot json at all\n") with
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Trace.of_jsonl "{\"kind\":\"nope\"}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown event kind accepted"

(* --- the advisor pays off end to end --- *)

(* The TSP global bound is lock-protected and bounces between workers:
   the analyzer must classify its page migratory and recommend
   migrate_thread; following the advice must reduce page traffic. *)
let tsp_run protocol =
  let captured = ref None in
  let observe dsm =
    captured := Some dsm;
    Dsmpm2_core.Monitor.enable dsm true
  in
  let r =
    Dsmpm2_apps.Tsp.run
      { Dsmpm2_apps.Tsp.default with protocol; observe = Some observe }
  in
  match !captured with
  | Some dsm -> (r, dsm)
  | None -> Alcotest.fail "tsp did not expose its runtime"

let test_tsp_advice_end_to_end () =
  let baseline, dsm = tsp_run "li_hudak" in
  let a = Analyze.analyze (Dsmpm2_core.Monitor.trace dsm) in
  let advice = Analyze.advice a in
  let to_migrate =
    List.filter (fun ad -> ad.Analyze.ad_recommended = "migrate_thread") advice
  in
  Alcotest.(check bool) "advisor recommends migrate_thread for the bound page"
    true (to_migrate <> []);
  List.iter
    (fun ad ->
      Alcotest.(check string) "because the page is migratory" "migratory"
        (Analyze.pattern_to_string ad.Analyze.ad_pattern))
    to_migrate;
  let advised, _ = tsp_run "migrate_thread" in
  let faults r = r.Dsmpm2_apps.Tsp.read_faults + r.Dsmpm2_apps.Tsp.write_faults in
  Alcotest.(check bool)
    (Printf.sprintf "advised protocol faults less (%d < %d)" (faults advised)
       (faults baseline))
    true
    (faults advised < faults baseline);
  Alcotest.(check bool) "and still finds the same tour" true
    (advised.Dsmpm2_apps.Tsp.best = baseline.Dsmpm2_apps.Tsp.best)

(* --- analysis exports --- *)

let test_json_export_parses () =
  let _, dsm = tsp_run "li_hudak" in
  let a = Analyze.analyze (Dsmpm2_core.Monitor.trace dsm) in
  match Json.of_string (Json.to_string (Analyze.to_json a)) with
  | Error msg -> Alcotest.failf "analysis JSON does not re-parse: %s" msg
  | Ok json ->
      List.iter
        (fun field ->
          Alcotest.(check bool) ("has " ^ field) true (Json.member field json <> None))
        [ "critical_path"; "top_spans"; "pages"; "locks"; "barriers"; "advice" ]

let test_folded_output_shape () =
  let _, dsm = tsp_run "li_hudak" in
  let a = Analyze.analyze (Dsmpm2_core.Monitor.trace dsm) in
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Analyze.folded fmt a;
  Format.pp_print_flush fmt ();
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check bool) "has folded lines" true (lines <> []);
  List.iter
    (fun line ->
      (* flamegraph folded format: "frame;frame;frame <integer>" *)
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no sample count in %S" line
      | Some i ->
          let stack = String.sub line 0 i in
          let count = String.sub line (i + 1) (String.length line - i - 1) in
          Alcotest.(check bool) "stack is rooted" true
            (String.length stack > 7 && String.sub stack 0 7 = "dsmpm2;");
          Alcotest.(check bool) "count is an integer" true
            (int_of_string_opt count <> None))
    lines

let () =
  Alcotest.run "analyze"
    [
      ( "classify",
        [
          Alcotest.test_case "private" `Quick test_classify_private;
          Alcotest.test_case "read-mostly" `Quick test_classify_read_mostly;
          Alcotest.test_case "migratory" `Quick test_classify_migratory;
          Alcotest.test_case "false sharing" `Quick test_classify_false_sharing;
          Alcotest.test_case "producer-consumer" `Quick test_classify_producer_consumer;
          Alcotest.test_case "single writer" `Quick test_classify_single_writer;
          Alcotest.test_case "advisor mapping" `Quick test_advisor_mapping;
        ] );
      ( "critical-path",
        [
          Alcotest.test_case "stage arithmetic" `Quick test_critical_path_stages;
          Alcotest.test_case "migration stage" `Quick test_migration_stage;
        ] );
      ( "contention",
        [
          Alcotest.test_case "lock wait and hold" `Quick test_lock_contention;
          Alcotest.test_case "barrier imbalance" `Quick test_barrier_imbalance;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip all variants" `Quick test_of_jsonl_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_of_jsonl_rejects_garbage;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "tsp end to end" `Quick test_tsp_advice_end_to_end;
        ] );
      ( "exports",
        [
          Alcotest.test_case "json re-parses" `Quick test_json_export_parses;
          Alcotest.test_case "folded shape" `Quick test_folded_output_shape;
        ] );
    ]

(* Integration tests of the six built-in protocols on small clusters. *)

open Dsmpm2_net
open Dsmpm2_mem
open Dsmpm2_core
open Dsmpm2_protocols

let make ?(nodes = 4) ?(driver = Driver.bip_myrinet) () =
  let dsm = Dsm.create ~nodes ~driver () in
  let ids = Builtin.register_all dsm in
  (dsm, ids)

(* Runs [f node] in one thread per node and drives the simulation to
   completion. *)
let run_on_all dsm f =
  let threads =
    List.init (Dsm.nodes dsm) (fun node -> Dsm.spawn dsm ~node (fun () -> f node))
  in
  Dsm.run dsm;
  List.iter
    (fun th ->
      Alcotest.(check bool)
        "thread terminated" false
        (Dsmpm2_pm2.Marcel.is_alive th))
    threads

let run_one dsm ~node f =
  ignore (Dsm.spawn dsm ~node f);
  Dsm.run dsm

(* --- li_hudak --- *)

let test_li_hudak_read_replication () =
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  let seen = Array.make 4 0 in
  run_on_all dsm (fun node ->
      if node = 0 then Dsm.write_int dsm x 42;
      (* Barrier-free: make node 0 write first via a small delay. *)
      if node <> 0 then begin
        Dsm.compute dsm 10_000.;
        seen.(node) <- Dsm.read_int dsm x
      end);
  Array.iteri (fun node v -> if node <> 0 then Alcotest.(check int) (Printf.sprintf "node %d sees 42" node) 42 v) seen;
  (* After replication on read, every reader holds a read-only copy. *)
  for node = 1 to 3 do
    Alcotest.check
      (Alcotest.testable Access.pp ( = ))
      "reader has read-only copy" Access.Read_only
      (Dsm.unsafe_rights dsm ~node ~addr:x)
  done

let test_li_hudak_write_migrates_ownership () =
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  run_one dsm ~node:2 (fun () ->
      Dsm.write_int dsm x 7;
      Alcotest.(check int) "value visible locally" 7 (Dsm.read_int dsm x));
  Alcotest.check
    (Alcotest.testable Access.pp ( = ))
    "writer now read-write" Access.Read_write
    (Dsm.unsafe_rights dsm ~node:2 ~addr:x);
  Alcotest.check
    (Alcotest.testable Access.pp ( = ))
    "old owner lost the page" Access.No_access
    (Dsm.unsafe_rights dsm ~node:0 ~addr:x)

let test_li_hudak_mrsw_invariant () =
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm () in
  run_on_all dsm (fun _node ->
      for _ = 1 to 5 do
        Dsm.with_lock dsm lock (fun () ->
            let v = Dsm.read_int dsm x in
            Dsm.write_int dsm x (v + 1))
      done);
  (* 4 nodes x 5 increments, each under the lock: sequential consistency
     must not lose any. *)
  let writers =
    List.init 4 (fun node -> Dsm.unsafe_rights dsm ~node ~addr:x)
    |> List.filter (fun r -> r = Access.Read_write)
  in
  Alcotest.(check int) "at most one writer node" 1 (List.length writers);
  let owner =
    let rec find n = if Dsm.unsafe_rights dsm ~node:n ~addr:x = Access.Read_write then n else find (n + 1) in
    find 0
  in
  Alcotest.(check int) "no increment lost" 20 (Dsm.unsafe_peek dsm ~node:owner x)

(* --- migrate_thread --- *)

let test_migrate_thread_moves_thread () =
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.migrate_thread ~home:(Dsm.On_node 3) 8 in
  let final_node = ref (-1) in
  run_one dsm ~node:0 (fun () ->
      Dsm.write_int dsm x 9;
      final_node := Dsm.self_node dsm);
  Alcotest.(check int) "thread migrated to owner" 3 !final_node;
  Alcotest.(check int) "write landed on owner copy" 9 (Dsm.unsafe_peek dsm ~node:3 x);
  Alcotest.(check int) "one migration happened" 1 (Dsmpm2_pm2.Pm2.migrations (Dsm.pm2 dsm))

let test_migrate_thread_counter () =
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.migrate_thread ~home:(Dsm.On_node 1) 8 in
  let lock = Dsm.lock_create dsm () in
  run_on_all dsm (fun _node ->
      for _ = 1 to 3 do
        Dsm.with_lock dsm lock (fun () ->
            let v = Dsm.read_int dsm x in
            Dsm.write_int dsm x (v + 1))
      done);
  Alcotest.(check int) "counter correct" 12 (Dsm.unsafe_peek dsm ~node:1 x)

(* --- erc_sw --- *)

let test_erc_sw_stale_until_release () =
  let dsm, ids = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.erc_sw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.erc_sw () in
  let observed_stale = ref (-1) in
  let observed_final = ref (-1) in
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         (* Acquire a copy first. *)
         ignore (Dsm.read_int dsm x);
         Dsm.compute dsm 20_000.;
         (* Writer has written but not released: our copy may be stale. *)
         observed_stale := Dsm.read_int dsm x;
         Dsm.compute dsm 40_000.;
         (* Writer released: our copy was invalidated; re-fetch sees 5. *)
         observed_final := Dsm.read_int dsm x));
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.compute dsm 10_000.;
         Dsm.lock_acquire dsm lock;
         Dsm.write_int dsm x 5;
         Dsm.compute dsm 20_000.;
         Dsm.lock_release dsm lock));
  Dsm.run dsm;
  Alcotest.(check int) "read before release is stale" 0 !observed_stale;
  Alcotest.(check int) "read after release sees the write" 5 !observed_final

let test_erc_sw_locked_counter () =
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.erc_sw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.erc_sw () in
  run_on_all dsm (fun _node ->
      for _ = 1 to 5 do
        Dsm.with_lock dsm lock (fun () ->
            let v = Dsm.read_int dsm x in
            Dsm.write_int dsm x (v + 1))
      done);
  let owner =
    let rec find n =
      if n >= 4 then Alcotest.fail "no owner found"
      else if Dsm.unsafe_rights dsm ~node:n ~addr:x <> Access.No_access then n
      else find (n + 1)
    in
    find 0
  in
  Alcotest.(check int) "no increment lost under locks" 20 (Dsm.unsafe_peek dsm ~node:owner x)

(* --- hbrc_mw --- *)

let test_hbrc_mw_diffs_reach_home () =
  let dsm, ids = make ~nodes:3 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  run_one dsm ~node:1 (fun () ->
      Dsm.with_lock dsm lock (fun () -> Dsm.write_int dsm x 77));
  Alcotest.(check int) "home holds the released value" 77 (Dsm.unsafe_peek dsm ~node:0 x)

let test_hbrc_mw_multiple_writers_merge () =
  let dsm, ids = make ~nodes:3 () in
  (* Two variables on the same page, written concurrently by two nodes:
     the home must merge both diffs (the multiple-writer property). *)
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 0) 16 in
  let y = x + 8 in
  let lock1 = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  let lock2 = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.with_lock dsm lock1 (fun () -> Dsm.write_int dsm x 11)));
  ignore
    (Dsm.spawn dsm ~node:2 (fun () ->
         Dsm.with_lock dsm lock2 (fun () -> Dsm.write_int dsm y 22)));
  Dsm.run dsm;
  Alcotest.(check int) "x merged at home" 11 (Dsm.unsafe_peek dsm ~node:0 x);
  Alcotest.(check int) "y merged at home" 22 (Dsm.unsafe_peek dsm ~node:0 y)

let test_hbrc_mw_locked_counter () =
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  run_on_all dsm (fun _node ->
      for _ = 1 to 5 do
        Dsm.with_lock dsm lock (fun () ->
            let v = Dsm.read_int dsm x in
            Dsm.write_int dsm x (v + 1))
      done);
  Alcotest.(check int) "home sees all increments" 20 (Dsm.unsafe_peek dsm ~node:0 x)

(* --- java --- *)

let java_counter ~proto_of dsm ids =
  let proto = proto_of ids in
  let x = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
  let monitor = Dsm.lock_create dsm ~protocol:proto () in
  run_on_all dsm (fun _node ->
      for _ = 1 to 5 do
        Dsm.with_lock dsm monitor (fun () ->
            let v = Dsm.read_int dsm x in
            Dsm.write_int dsm x (v + 1))
      done);
  Alcotest.(check int) "main memory sees all increments" 20 (Dsm.unsafe_peek dsm ~node:0 x)

let test_java_ic_counter () =
  let dsm, ids = make () in
  java_counter ~proto_of:(fun i -> i.Builtin.java_ic) dsm ids

let test_java_pf_counter () =
  let dsm, ids = make () in
  java_counter ~proto_of:(fun i -> i.Builtin.java_pf) dsm ids

let test_java_records_until_exit () =
  let dsm, ids = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.java_pf ~home:(Dsm.On_node 0) 8 in
  let monitor = Dsm.lock_create dsm ~protocol:ids.Builtin.java_pf () in
  let records_inside = ref [] in
  run_one dsm ~node:1 (fun () ->
      Dsm.lock_acquire dsm monitor;
      Dsm.write_int dsm x 123;
      let page = List.hd (Dsm.region_pages dsm ~addr:x ~size:8) in
      records_inside := Java_common.recorded_words dsm ~node:1 ~page;
      Dsm.lock_release dsm monitor);
  Alcotest.(check int) "one record pending inside monitor" 1 (List.length !records_inside);
  Alcotest.(check int) "home updated on exit" 123 (Dsm.unsafe_peek dsm ~node:0 x)

let test_java_ic_charges_checks () =
  let dsm, ids = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.java_ic ~home:(Dsm.On_node 0) 8 in
  run_one dsm ~node:0 (fun () ->
      for _ = 1 to 100 do
        ignore (Dsm.read_int dsm x)
      done);
  Alcotest.(check int) "100 inline checks counted" 100
    (Dsmpm2_sim.Stats.count (Dsm.stats dsm) Instrument.inline_checks)

(* --- cross-protocol: regions with different protocols coexist --- *)

let test_mixed_protocols_coexist () =
  let dsm, ids = make ~nodes:2 () in
  let a = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  let b = Dsm.malloc dsm ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  run_one dsm ~node:1 (fun () ->
      Dsm.write_int dsm a 1;
      Dsm.with_lock dsm lock (fun () -> Dsm.write_int dsm b 2));
  Alcotest.(check int) "li_hudak page migrated" 1 (Dsm.unsafe_peek dsm ~node:1 a);
  Alcotest.(check int) "hbrc page flushed home" 2 (Dsm.unsafe_peek dsm ~node:0 b)

(* --- edge cases and contention stress --- *)

(* Regression for the pin-until-retry fix: two nodes hammering writes on
   the same page without any lock must both make progress (no ownership
   ping-pong livelock, no Fault_storm). *)
let test_write_contention_progress () =
  let dsm, ids = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 16 in
  let writes = Array.make 2 0 in
  let threads =
    List.init 2 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for i = 1 to 50 do
              Dsm.write_int dsm (x + (node * 8)) i;
              writes.(node) <- writes.(node) + 1
            done))
  in
  Dsm.run dsm;
  ignore threads;
  Alcotest.(check (list int)) "both writers completed" [ 50; 50 ] (Array.to_list writes)

(* Local faults on the same page coalesce: ten threads of one node reading
   a remote page trigger exactly one page transfer. *)
let test_fault_coalescing_one_transfer () =
  let dsm, ids = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 1) 8 in
  let threads =
    List.init 10 (fun _ ->
        Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x)))
  in
  Dsm.run dsm;
  ignore threads;
  let stats = Dsm.stats dsm in
  Alcotest.(check int) "one page sent" 1
    (Dsmpm2_sim.Stats.count stats Instrument.pages_sent);
  (* each thread takes its own fault (as with SIGSEGV), but the requests
     coalesce into a single page request on the wire *)
  Alcotest.(check int) "ten faults charged" 10
    (Dsmpm2_sim.Stats.count stats Instrument.read_faults);
  Alcotest.(check int) "single request message" 1
    (Dsmpm2_sim.Stats.count
       (Network.stats (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm)))
       "msg.request")

(* Faults on distinct pages from one node proceed in parallel: with two
   pages on two different remote homes, total time is ~one fault, not
   two (the paper's "concurrent requests may be processed in parallel"). *)
let test_faults_on_distinct_pages_parallel () =
  let dsm, ids = make ~nodes:3 () in
  let a = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 1) 8 in
  let b = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 2) 8 in
  ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm a)));
  ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm b)));
  Dsm.run dsm;
  (* Two sequential BIP faults would be ~396us; parallel ones finish ~198us
     plus small CPU interleaving on the shared requester CPU. *)
  Alcotest.(check bool)
    (Printf.sprintf "parallel faults (finished at %.1fus)" (Dsm.now_us dsm))
    true
    (Dsm.now_us dsm < 300.)

(* Ownership requests chase the probable-owner chain across three nodes. *)
let test_li_hudak_owner_chain () =
  let dsm, ids = make ~nodes:3 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  run_one dsm ~node:1 (fun () -> Dsm.write_int dsm x 1);
  (* ownership now at node 1; node 2 faults with a stale hint (home 0) *)
  run_one dsm ~node:2 (fun () ->
      Alcotest.(check int) "read through the chain" 1 (Dsm.read_int dsm x);
      Dsm.write_int dsm x 2);
  Alcotest.(check int) "node 2 became owner" 2 (Dsm.unsafe_peek dsm ~node:2 x);
  Alcotest.check
    (Alcotest.testable Access.pp ( = ))
    "old owner invalidated" Access.No_access
    (Dsm.unsafe_rights dsm ~node:1 ~addr:x)

let test_erc_pending_writes_tracked () =
  let dsm, ids = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.erc_sw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.erc_sw () in
  let during = ref [] and after = ref [ -1 ] in
  run_one dsm ~node:1 (fun () ->
      Dsm.lock_acquire dsm lock;
      Dsm.write_int dsm x 5;
      during := Erc_sw.pending_writes dsm ~node:1;
      Dsm.lock_release dsm lock;
      after := Erc_sw.pending_writes dsm ~node:1);
  Alcotest.(check int) "one page pending inside the section" 1 (List.length !during);
  Alcotest.(check (list int)) "cleared by the release" [] !after

let test_hbrc_dirty_pages_tracked () =
  let dsm, ids = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  let during = ref [] and after = ref [ -1 ] in
  run_one dsm ~node:1 (fun () ->
      Dsm.lock_acquire dsm lock;
      Dsm.write_int dsm x 5;
      during := Hbrc_mw.dirty_pages dsm ~node:1;
      Dsm.lock_release dsm lock;
      after := Hbrc_mw.dirty_pages dsm ~node:1);
  Alcotest.(check int) "dirty inside the section" 1 (List.length !during);
  Alcotest.(check (list int)) "flushed by the release" [] !after

(* Heavy mixed stress: every protocol, many threads per node, many pages,
   per-page locks.  Checks exact counter totals and (for the MRSW
   protocols) the single-writer invariant at quiescence. *)
let stress protocol_name =
  let nodes = 4 and pages = 6 and threads_per_node = 3 and iters = 6 in
  let dsm, _ = make ~nodes () in
  let proto = Option.get (Dsm.protocol_by_name dsm protocol_name) in
  let base = Dsm.malloc dsm ~protocol:proto (pages * 4096) in
  let locks = Array.init pages (fun _ -> Dsm.lock_create dsm ~protocol:proto ()) in
  let rng = Dsmpm2_sim.Rng.create ~seed:5 in
  let plan =
    Array.init (nodes * threads_per_node) (fun _ ->
        Array.init iters (fun _ -> Dsmpm2_sim.Rng.int rng pages))
  in
  let expected = Array.make pages 0 in
  Array.iter (Array.iter (fun p -> expected.(p) <- expected.(p) + 1)) plan;
  Array.iteri
    (fun t seq ->
      ignore
        (Dsm.spawn dsm ~node:(t mod nodes) (fun () ->
             Array.iter
               (fun p ->
                 let addr = base + (p * 4096) in
                 Dsm.with_lock dsm locks.(p) (fun () ->
                     Dsm.write_int dsm addr (Dsm.read_int dsm addr + 1));
                 Dsm.compute dsm 3.)
               seq)))
    plan;
  Dsm.run dsm;
  (* read back DRF-style *)
  let final = Array.make pages (-1) in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Array.iteri
           (fun p lock ->
             Dsm.with_lock dsm lock (fun () ->
                 final.(p) <- Dsm.read_int dsm (base + (p * 4096))))
           locks));
  Dsm.run dsm;
  Alcotest.(check (array int)) (protocol_name ^ " exact counters") expected final;
  if protocol_name = "li_hudak" || protocol_name = "erc_sw" then
    for p = 0 to pages - 1 do
      let writers = ref 0 in
      for node = 0 to nodes - 1 do
        if Dsm.unsafe_rights dsm ~node ~addr:(base + (p * 4096)) = Access.Read_write
        then incr writers
      done;
      Alcotest.(check bool) "at most one writer node at quiescence" true (!writers <= 1)
    done

(* --- probable-owner chain length (request hops) ---

   Build a long ownership chain (nodes 1..7 write in turn, each going
   through the home), then measure how many [Driver.Request] messages one
   read fault costs.  Reads send only request messages (the page reply is
   bulk), so the "msg.request" counter delta is exactly the hop count. *)

let request_count dsm =
  let net = Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm) in
  Dsmpm2_sim.Stats.count (Network.stats net) "msg.request"

(* Nodes 1..7 write in turn, each write request going through the home, and
   the run is driven to quiescence so the hint graph is settled before any
   measurement.  (Measuring threads must not coexist with the writers: they
   would share a node's CPU and skew the write schedule.) *)
let build_chain dsm ~protocol =
  let x = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 0) 8 in
  for k = 1 to 7 do
    ignore
      (Dsm.spawn dsm ~node:k (fun () ->
           Dsm.compute dsm (float_of_int (k * 2_000));
           Dsm.write_int dsm x k))
  done;
  Dsm.run dsm;
  x

let measured_read dsm ~node ~addr =
  let hops = ref (-1) in
  ignore
    (Dsm.spawn dsm ~node (fun () ->
         let before = request_count dsm in
         Alcotest.(check int) "reader sees last value" 7 (Dsm.read_int dsm addr);
         hops := request_count dsm - before));
  Dsm.run dsm;
  !hops

let test_li_hudak_hop_counts () =
  List.iter
    (fun tie_seed ->
      let dsm = Dsm.create ?tie_seed ~nodes:8 ~driver:Driver.bip_myrinet () in
      let ids = Builtin.register_all dsm in
      let x = build_chain dsm ~protocol:ids.Builtin.li_hudak in
      (* The home's hint was compressed by forwarding every write request:
         it points straight at the final owner. *)
      Alcotest.(check int) "home hint compressed to current owner" 1
        (measured_read dsm ~node:0 ~addr:x);
      (* Node 1's hint is the node it granted ownership to long ago (node
         2); reads do not compress, so the request walks the remaining
         chain 2 -> 3 -> ... -> 7. *)
      Alcotest.(check int) "stale chain walks the un-compressed tail" 6
        (measured_read dsm ~node:1 ~addr:x))
    [ None; Some 1; Some 7; Some 42 ]

let test_li_hudak_fixed_hop_counts () =
  List.iter
    (fun tie_seed ->
      let dsm = Dsm.create ?tie_seed ~nodes:8 ~driver:Driver.bip_myrinet () in
      ignore (Builtin.register_all dsm);
      let extras = Builtin.register_extras dsm in
      let x = build_chain dsm ~protocol:extras.Builtin.li_hudak_fixed in
      (* Fixed manager: every request goes to the home, whose hint the
         write-forwarding compression keeps authoritative — any reader pays
         exactly two hops (requester -> home -> owner), however long the
         ownership history. *)
      Alcotest.(check int) "fixed manager bounds reads to two hops" 2
        (measured_read dsm ~node:1 ~addr:x))
    [ None; Some 1; Some 7; Some 42 ]

(* --- message economy: batched invalidations ---

   A release over an N-page region with a K-node copyset must cost O(K)
   invalidation RPCs (one batched message per copy holder), not O(N x K):
   the [invalidate.rpc] counter counts wire messages, [invalidate.sent]
   still counts every (page, target) pair. *)

let test_hbrc_release_batched_invalidations () =
  let dsm, ids = make ~nodes:7 () in
  let pages = 8 in
  let base =
    Dsm.malloc dsm ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 0)
      (pages * 4096)
  in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  let barrier = Dsm.barrier_create dsm ~parties:6 () in
  (* Readers 2..6 cache every page, then the writer updates the whole region
     under the lock and releases. *)
  for node = 2 to 6 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for p = 0 to pages - 1 do
             ignore (Dsm.read_int dsm (base + (p * 4096)))
           done;
           Dsm.barrier_wait dsm barrier))
  done;
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.barrier_wait dsm barrier;
         Dsm.with_lock dsm lock (fun () ->
             for p = 0 to pages - 1 do
               Dsm.write_int dsm (base + (p * 4096)) (p + 1)
             done)));
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  (* The home invalidates the 5 third-party readers once each, covering all
     8 pages per message. *)
  Alcotest.(check int) "one invalidate RPC per copyset node" 5
    (Dsmpm2_sim.Stats.count stats Instrument.invalidate_rpcs);
  Alcotest.(check int) "every (page, target) pair invalidated" (pages * 5)
    (Dsmpm2_sim.Stats.count stats Instrument.invalidations);
  (* The writer's whole release travelled as one diffs message to the home. *)
  Alcotest.(check int) "all dirty pages diffed" pages
    (Dsmpm2_sim.Stats.count stats Instrument.diffs_sent)

let test_erc_release_batched_invalidations () =
  let dsm, ids = make ~nodes:7 () in
  let pages = 8 in
  let base =
    Dsm.malloc dsm ~protocol:ids.Builtin.erc_sw ~home:(Dsm.On_node 0)
      (pages * 4096)
  in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.erc_sw () in
  let barrier = Dsm.barrier_create dsm ~parties:6 () in
  for node = 2 to 6 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for p = 0 to pages - 1 do
             ignore (Dsm.read_int dsm (base + (p * 4096)))
           done;
           Dsm.barrier_wait dsm barrier))
  done;
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.barrier_wait dsm barrier;
         Dsm.with_lock dsm lock (fun () ->
             for p = 0 to pages - 1 do
               Dsm.write_int dsm (base + (p * 4096)) (p + 1)
             done)));
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  (* Ownership migrated to the writer with a copyset of the old owner plus
     the 5 readers: the eager release invalidates all 6 with one RPC each. *)
  Alcotest.(check int) "one invalidate RPC per copy holder" 6
    (Dsmpm2_sim.Stats.count stats Instrument.invalidate_rpcs);
  Alcotest.(check int) "every (page, target) pair invalidated" (pages * 6)
    (Dsmpm2_sim.Stats.count stats Instrument.invalidations)

let test_stress_li_hudak () = stress "li_hudak"
let test_stress_erc_sw () = stress "erc_sw"
let test_stress_hbrc_mw () = stress "hbrc_mw"
let test_stress_java_pf () = stress "java_pf"
let test_stress_java_ic () = stress "java_ic"
let test_stress_migrate_thread () = stress "migrate_thread"

let () =
  Alcotest.run "protocols"
    [
      ( "li_hudak",
        [
          Alcotest.test_case "read replication" `Quick test_li_hudak_read_replication;
          Alcotest.test_case "write migrates ownership" `Quick
            test_li_hudak_write_migrates_ownership;
          Alcotest.test_case "MRSW locked counter" `Quick test_li_hudak_mrsw_invariant;
        ] );
      ( "migrate_thread",
        [
          Alcotest.test_case "thread moves to data" `Quick test_migrate_thread_moves_thread;
          Alcotest.test_case "locked counter" `Quick test_migrate_thread_counter;
        ] );
      ( "erc_sw",
        [
          Alcotest.test_case "stale until release" `Quick test_erc_sw_stale_until_release;
          Alcotest.test_case "locked counter" `Quick test_erc_sw_locked_counter;
        ] );
      ( "hbrc_mw",
        [
          Alcotest.test_case "diffs reach home on release" `Quick
            test_hbrc_mw_diffs_reach_home;
          Alcotest.test_case "multiple writers merge" `Quick
            test_hbrc_mw_multiple_writers_merge;
          Alcotest.test_case "locked counter" `Quick test_hbrc_mw_locked_counter;
        ] );
      ( "java",
        [
          Alcotest.test_case "java_ic locked counter" `Quick test_java_ic_counter;
          Alcotest.test_case "java_pf locked counter" `Quick test_java_pf_counter;
          Alcotest.test_case "records flushed on monitor exit" `Quick
            test_java_records_until_exit;
          Alcotest.test_case "java_ic counts inline checks" `Quick
            test_java_ic_charges_checks;
        ] );
      ( "mixed",
        [ Alcotest.test_case "protocols coexist per region" `Quick test_mixed_protocols_coexist ] );
      ( "edge-cases",
        [
          Alcotest.test_case "write contention progress" `Quick
            test_write_contention_progress;
          Alcotest.test_case "fault coalescing" `Quick test_fault_coalescing_one_transfer;
          Alcotest.test_case "parallel faults on distinct pages" `Quick
            test_faults_on_distinct_pages_parallel;
          Alcotest.test_case "li_hudak owner chain" `Quick test_li_hudak_owner_chain;
          Alcotest.test_case "li_hudak hop counts" `Quick test_li_hudak_hop_counts;
          Alcotest.test_case "li_hudak_fixed hop counts" `Quick
            test_li_hudak_fixed_hop_counts;
          Alcotest.test_case "erc pending writes" `Quick test_erc_pending_writes_tracked;
          Alcotest.test_case "hbrc dirty pages" `Quick test_hbrc_dirty_pages_tracked;
        ] );
      ( "message-economy",
        [
          Alcotest.test_case "hbrc release batches invalidations" `Quick
            test_hbrc_release_batched_invalidations;
          Alcotest.test_case "erc release batches invalidations" `Quick
            test_erc_release_batched_invalidations;
        ] );
      ( "stress",
        [
          Alcotest.test_case "li_hudak" `Quick test_stress_li_hudak;
          Alcotest.test_case "erc_sw" `Quick test_stress_erc_sw;
          Alcotest.test_case "hbrc_mw" `Quick test_stress_hbrc_mw;
          Alcotest.test_case "java_pf" `Quick test_stress_java_pf;
          Alcotest.test_case "java_ic" `Quick test_stress_java_ic;
          Alcotest.test_case "migrate_thread" `Quick test_stress_migrate_thread;
        ] );
    ]

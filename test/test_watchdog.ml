(* The live watchdog: deadlock-cycle naming, stall warnings, thrash
   detection, green-path invariant audits across every builtin protocol,
   schedule transparency of the attached sampler, the bounded time-series
   ring, the JSON health report and the allocation-free disabled paths. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols
open Dsmpm2_experiments

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let make ?(nodes = 2) ?tie_seed () =
  let dsm = Dsm.create ?tie_seed ~nodes ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  dsm

let proto dsm name =
  match Dsm.protocol_by_name dsm name with
  | Some id -> id
  | None -> Alcotest.failf "protocol %s not registered" name

let kind_alerts w k =
  List.filter (fun a -> a.Watchdog.al_kind = k) (Watchdog.alerts w)

(* --- the deadlock regression: two locks taken in reversed order --- *)

let test_deadlock_cycle_named () =
  let dsm = make () in
  Monitor.enable dsm true;
  let l0 = Dsm.lock_create dsm () in
  let l1 = Dsm.lock_create dsm () in
  let w = Watchdog.attach dsm in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.lock_acquire dsm l0;
         Dsm.compute dsm 500.;
         Dsm.lock_acquire dsm l1;
         Dsm.lock_release dsm l1;
         Dsm.lock_release dsm l0));
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.lock_acquire dsm l1;
         Dsm.compute dsm 500.;
         Dsm.lock_acquire dsm l0;
         Dsm.lock_release dsm l0;
         Dsm.lock_release dsm l1));
  (match Dsm.run dsm with
  | () -> Alcotest.fail "reversed lock order must deadlock"
  | exception Engine.Stalled _ -> ());
  match kind_alerts w "deadlock.cycle" with
  | [] -> Alcotest.fail "watchdog did not report the cycle"
  | a :: _ ->
      Alcotest.(check bool) "critical" true (a.Watchdog.al_severity = Watchdog.Critical);
      let d = a.Watchdog.al_detail in
      (* The cycle is named in full: both locks and both waiting nodes. *)
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Printf.sprintf "detail names %S" sub) true
            (contains d sub))
        [
          Printf.sprintf "lock %d" l0;
          Printf.sprintf "lock %d" l1;
          "(node 0)";
          "(node 1)";
          "back to thread";
        ];
      (* A found cycle suppresses the generic stall alert. *)
      Alcotest.(check int) "no generic stall alert" 0
        (List.length (kind_alerts w "deadlock.stall"))

let test_missing_barrier_party_is_a_stall () =
  let dsm = make () in
  let b = Dsm.barrier_create dsm ~parties:2 () in
  let w = Watchdog.attach dsm in
  ignore (Dsm.spawn dsm ~node:0 (fun () -> Dsm.barrier_wait dsm b));
  (match Dsm.run dsm with
  | () -> Alcotest.fail "missing barrier party must stall"
  | exception Engine.Stalled _ -> ());
  match kind_alerts w "deadlock.stall" with
  | [] -> Alcotest.fail "watchdog did not report the stalled run"
  | a :: _ ->
      Alcotest.(check bool) "names the barrier" true
        (contains a.Watchdog.al_detail (Printf.sprintf "barrier %d" b))

(* --- stall warning: a lock held across a long compute phase --- *)

let test_long_wait_warns () =
  let dsm = make () in
  let l = Dsm.lock_create dsm () in
  let config =
    Watchdog.
      { default_config with interval = Time.of_us 200.; stall = Time.of_us 1000. }
  in
  let w = Watchdog.attach ~config dsm in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.lock_acquire dsm l;
         Dsm.compute dsm 5000.;
         Dsm.lock_release dsm l));
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.compute dsm 100.;
         Dsm.lock_acquire dsm l;
         Dsm.lock_release dsm l));
  Dsm.run dsm;
  (match kind_alerts w "stall.lock" with
  | [] -> Alcotest.fail "no stall warning for a 5 ms wait"
  | a :: _ ->
      Alcotest.(check bool) "warning severity" true
        (a.Watchdog.al_severity = Watchdog.Warning);
      Alcotest.(check bool) "names the lock" true
        (contains a.Watchdog.al_detail (Printf.sprintf "lock %d" l));
      Alcotest.(check bool) "names the waiting node" true
        (contains a.Watchdog.al_detail "node 1"));
  let _, _, critical = Watchdog.alert_counts w in
  Alcotest.(check int) "a slow run is not a deadlock" 0 critical

(* --- thrashing: unsynchronized writer ping-pong on one page --- *)

let test_thrash_detected () =
  let dsm = make () in
  Monitor.enable dsm true;
  let x = Dsm.malloc dsm ~protocol:(proto dsm "li_hudak") 8 in
  let config =
    Watchdog.
      {
        default_config with
        interval = Time.of_us 100.;
        thrash_window = 4;
        thrash_span = Time.of_us 1_000_000.;
      }
  in
  let w = Watchdog.attach ~config dsm in
  for node = 0 to 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for i = 1 to 6 do
             Dsm.write_int dsm x i;
             Dsm.compute dsm 50.
           done))
  done;
  Dsm.run dsm;
  match kind_alerts w "thrash.page" with
  | [] -> Alcotest.fail "page ping-pong not detected"
  | a :: _ ->
      Alcotest.(check bool) "names the page" true
        (contains a.Watchdog.al_detail "ping-ponged")

(* --- green path: clean runs raise no alerts under any builtin protocol --- *)

let green_run ?config protocol_name =
  let dsm = make () in
  Monitor.enable dsm true;
  let p = proto dsm protocol_name in
  let x = Dsm.malloc dsm ~protocol:p 8 in
  let l = Dsm.lock_create dsm ~protocol:p () in
  if protocol_name = "entry_ec" then Entry_ec.bind dsm ~lock:l ~addr:x ~size:8;
  let b = Dsm.barrier_create dsm ~protocol:p ~parties:2 () in
  let w = Watchdog.attach ?config dsm in
  let final = ref (-1) in
  for node = 0 to 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for _ = 1 to 3 do
             Dsm.with_lock dsm l (fun () ->
                 Dsm.write_int dsm x (Dsm.read_int dsm x + 1));
             Dsm.barrier_wait dsm b
           done;
           (* An acquire of the guarding lock orders this read after the
              last increment under every consistency model. *)
           if node = 0 then
             Dsm.with_lock dsm l (fun () -> final := Dsm.read_int dsm x)))
  done;
  Dsm.run dsm;
  Alcotest.(check int) (protocol_name ^ ": final value") 6 !final;
  (dsm, w)

let test_green_path_all_protocols () =
  List.iter
    (fun name ->
      let _, w = green_run name in
      (* Informational protocol advice ("advice.page") may fire on a clean
         run — it is a tuning hint, not a health finding.  Green means no
         warnings and no criticals. *)
      let problems =
        List.filter
          (fun a -> a.Watchdog.al_severity <> Watchdog.Info)
          (Watchdog.alerts w)
      in
      Alcotest.(check (list string)) (name ^ ": no alerts") []
        (List.map (fun a -> a.Watchdog.al_detail) problems);
      Alcotest.(check bool) (name ^ ": sampled") true (Watchdog.samples_taken w > 0);
      Alcotest.(check bool) (name ^ ": audited pages") true
        (Watchdog.pages_audited w > 0))
    Conformance.all_protocols

(* --- schedule transparency: the sampler never perturbs a seeded run --- *)

let test_watchdog_preserves_schedule () =
  List.iter
    (fun protocol ->
      List.iter
        (fun seed ->
          let bare =
            Conformance.run_one ~protocol ~driver:Driver.bip_myrinet
              ~workload:Conformance.Mixed_sync ~seed
          in
          (* run_one_traced attaches the watchdog on top of the monitor. *)
          let traced, _ =
            Conformance.run_one_traced ~protocol ~driver:Driver.bip_myrinet
              ~workload:Conformance.Mixed_sync ~seed
          in
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d: same fingerprint" protocol seed)
            bare.Conformance.o_fingerprint traced.Conformance.o_fingerprint;
          Alcotest.(check int)
            (Printf.sprintf "%s seed %d: same op count" protocol seed)
            bare.Conformance.o_ops traced.Conformance.o_ops)
        [ 0; 1; 2 ])
    [ "li_hudak"; "hbrc_mw"; "migrate_thread"; "java_pf" ]

let test_traced_alerts_reach_analyzer () =
  (* Watchdog findings travel as Trace.Alert events, so the post-mortem
     analyzer sees what the live run saw. *)
  let dsm = make () in
  Monitor.enable dsm true;
  let l0 = Dsm.lock_create dsm () in
  let l1 = Dsm.lock_create dsm () in
  ignore (Watchdog.attach dsm);
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.lock_acquire dsm l0;
         Dsm.compute dsm 500.;
         Dsm.lock_acquire dsm l1));
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.lock_acquire dsm l1;
         Dsm.compute dsm 500.;
         Dsm.lock_acquire dsm l0));
  (try Dsm.run dsm with Engine.Stalled _ -> ());
  let a = Analyze.analyze (Monitor.trace dsm) in
  match
    List.filter (fun al -> al.Analyze.at_kind = "deadlock.cycle") (Analyze.alerts a)
  with
  | [] -> Alcotest.fail "analyzer did not surface the watchdog alert"
  | al :: _ ->
      Alcotest.(check string) "severity" "critical" al.Analyze.at_severity;
      Alcotest.(check bool) "detail preserved" true
        (contains al.Analyze.at_detail "back to thread")

(* --- ring buffer, health report, double attach --- *)

let test_ring_is_bounded () =
  let config =
    Watchdog.
      { default_config with interval = Time.of_us 50.; ring_capacity = 4 }
  in
  let _, w = green_run ~config "li_hudak" in
  Alcotest.(check bool) "took more samples than the ring holds" true
    (Watchdog.samples_taken w > 4);
  Alcotest.(check bool) "ring bounded" true (List.length (Watchdog.samples w) <= 4)

let test_health_json () =
  let _, w = green_run "hbrc_mw" in
  let json = Watchdog.health_json w in
  (match Json.of_string (Json.to_string json) with
  | Error msg -> Alcotest.failf "health report is not valid JSON: %s" msg
  | Ok _ -> ());
  (match Json.member "healthy" json with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "green run must be healthy");
  match Json.member "alerts" json with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "green run must report an empty alert list"

let test_double_attach_rejected () =
  let dsm = make () in
  ignore (Watchdog.attach dsm);
  match Watchdog.attach dsm with
  | _ -> Alcotest.fail "second attach must be rejected"
  | exception Invalid_argument _ -> ()

(* --- disabled paths allocate nothing (mirrors the interned-handle
   guarantees from the instrumentation layer) --- *)

let test_disabled_paths_allocate_nothing () =
  let dsm = make () in
  (* No Monitor.enable, no Watchdog.attach: both the alert forwarding and
     the sync-client wait hooks must be free. *)
  let a =
    Watchdog.
      {
        al_at_us = 1.0;
        al_severity = Warning;
        al_kind = "thrash.page";
        al_node = 0;
        al_detail = "preallocated";
      }
  in
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Watchdog.forward_alert dsm a;
    Runtime.notify_wait dsm ~node:0 ~tid:1 ~target:2;
    Runtime.notify_wake dsm ~node:0 ~tid:1 ~target:2;
    Runtime.notify_rearm dsm
  done;
  let after = Gc.minor_words () in
  Alcotest.(check bool) "no allocation on disabled paths" true
    (after -. before < 256.)

let () =
  Alcotest.run "watchdog"
    [
      ( "deadlock",
        [
          Alcotest.test_case "cycle named in full" `Quick test_deadlock_cycle_named;
          Alcotest.test_case "missing barrier party" `Quick
            test_missing_barrier_party_is_a_stall;
        ] );
      ( "stalls",
        [ Alcotest.test_case "long lock wait warns" `Quick test_long_wait_warns ] );
      ( "thrashing",
        [ Alcotest.test_case "page ping-pong" `Quick test_thrash_detected ] );
      ( "audits",
        [
          Alcotest.test_case "green path, all protocols" `Quick
            test_green_path_all_protocols;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "schedule preserved" `Quick
            test_watchdog_preserves_schedule;
          Alcotest.test_case "alerts reach the analyzer" `Quick
            test_traced_alerts_reach_analyzer;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "ring bounded" `Quick test_ring_is_bounded;
          Alcotest.test_case "health json" `Quick test_health_json;
          Alcotest.test_case "double attach rejected" `Quick
            test_double_attach_rejected;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "disabled paths are free" `Quick
            test_disabled_paths_allocate_nothing;
        ] );
    ]

(* Tests of the macro-benchmark suite: schema round-trip, determinism and
   matrix filtering. *)

open Dsmpm2_sim
open Dsmpm2_experiments
module B = Bench_suite

(* --- schema round-trip ---

   The Json printer renders non-integral floats with %.6g, which is lossy;
   every float the suite records is microseconds from the integer-valued
   simulated clock, so the generator sticks to integral floats and the
   round-trip must then be exact. *)

let gen_t =
  let open QCheck.Gen in
  let app = oneofl [ "jacobi"; "tsp"; "coloring"; "lu"; "matmul"; "sort" ] in
  let proto = oneofl [ "hbrc_mw"; "li_hudak"; "erc_sw"; "write_update" ] in
  let driver = oneofl [ "BIP/Myrinet"; "SISCI/SCI"; "TCP/FastEthernet" ] in
  let ifloat hi = map float_of_int (0 -- hi) in
  let sample =
    map
      (fun ((seed, t, msgs), (bytes, rf, wf), (p50, p90, p99)) ->
        {
          B.s_seed = seed;
          s_time_us = t;
          s_messages = msgs;
          s_bytes = bytes;
          s_read_faults = rf;
          s_write_faults = wf;
          s_dropped = rf mod 7;
          s_rpc_retries = wf mod 5;
          s_fault_p50_us = p50;
          s_fault_p90_us = p90;
          s_fault_p99_us = p99;
          s_fault_p999_us = p99 +. float_of_int (seed mod 13);
        })
      (triple
         (triple (0 -- 99) (ifloat 10_000_000) (0 -- 100_000))
         (triple (0 -- 10_000_000) (0 -- 10_000) (0 -- 10_000))
         (triple (ifloat 10_000) (ifloat 10_000) (ifloat 10_000)))
  in
  let params =
    list_size (0 -- 3)
      (pair (oneofl [ "size"; "iterations"; "cities"; "elements" ]) (1 -- 64))
  in
  let case_result =
    map
      (fun ((app, proto, driver), (nodes, quick, params), samples) ->
        let id = Printf.sprintf "%s:%s:%d" app proto nodes in
        {
          B.cr_case =
            {
              B.c_id = id;
              c_app = app;
              c_protocol = proto;
              c_driver = driver;
              c_nodes = nodes;
              c_params = params;
              c_quick = quick;
            };
          cr_meta =
            Run_meta.v ~git_rev:"deadbeef" ~driver ~protocol:proto ~nodes
              ~case:id ();
          cr_samples = samples;
        })
      (triple
         (triple app proto driver)
         (triple (1 -- 16) bool params)
         (list_size (1 -- 4) sample))
  in
  map
    (fun results ->
      { B.bs_meta = Run_meta.v ~git_rev:"deadbeef" (); bs_results = results })
    (list_size (0 -- 6) case_result)

let prop_schema_roundtrip =
  QCheck.Test.make ~name:"BENCH_macro schema round-trips through text"
    ~count:200
    (QCheck.make gen_t)
    (fun t ->
      let text = Json.to_string_pretty (B.to_json t) in
      match Json.of_string text with
      | Error _ -> false
      | Ok j -> (
          match B.of_json j with Ok t' -> t = t' | Error _ -> false))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let test_schema_version_rejected () =
  let bad =
    Json.Obj [ ("schema", Json.String "dsm-bench-macro/99"); ("cases", Json.List []) ]
  in
  match B.of_json bad with
  | Ok _ -> Alcotest.fail "unknown schema accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the schema" true
        (contains ~sub:"dsm-bench-macro/99" msg)

(* --- determinism --- *)

let tiny_case =
  {
    B.c_id = "jacobi:hbrc_mw:test";
    c_app = "jacobi";
    c_protocol = "hbrc_mw";
    c_driver = "BIP/Myrinet";
    c_nodes = 4;
    c_params = [ ("size", 16); ("iterations", 2) ];
    c_quick = true;
  }

let test_run_case_deterministic () =
  let a = B.run_case ~seeds:[ 0; 1 ] tiny_case in
  let b = B.run_case ~seeds:[ 0; 1 ] tiny_case in
  Alcotest.(check bool) "same seeds, same samples" true
    (a.B.cr_samples = b.B.cr_samples);
  Alcotest.(check int) "one sample per seed" 2 (List.length a.B.cr_samples);
  List.iter2
    (fun seed s -> Alcotest.(check int) "seed recorded" seed s.B.s_seed)
    [ 0; 1 ] a.B.cr_samples;
  List.iter
    (fun s ->
      Alcotest.(check bool) "simulated time advanced" true (s.B.s_time_us > 0.);
      Alcotest.(check bool) "messages flowed" true (s.B.s_messages > 0))
    a.B.cr_samples

let test_case_meta () =
  let r = B.run_case ~seeds:[ 3 ] tiny_case in
  let m = r.B.cr_meta in
  Alcotest.(check (option string)) "driver" (Some "BIP/Myrinet") m.Run_meta.rm_driver;
  Alcotest.(check (option string)) "protocol" (Some "hbrc_mw") m.Run_meta.rm_protocol;
  Alcotest.(check (option int)) "nodes" (Some 4) m.Run_meta.rm_nodes;
  Alcotest.(check (option string)) "case" (Some tiny_case.B.c_id) m.Run_meta.rm_case

(* --- the committed matrix and its filters --- *)

let test_matrix_well_formed () =
  let all = B.cases () in
  Alcotest.(check bool) "non-empty" true (all <> []);
  let ids = List.map (fun c -> c.B.c_id) all in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "has a quick subset" true
    (List.exists (fun c -> c.B.c_quick) all);
  (* every case runs: the registered protocol and driver names must resolve *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.B.c_id ^ " driver resolves")
        true
        (Dsmpm2_net.Driver.by_name c.B.c_driver <> None))
    all

let test_filter_cases () =
  let all = B.cases () in
  let quick = B.filter_cases ~quick:true all in
  Alcotest.(check bool) "quick keeps only quick" true
    (quick <> [] && List.for_all (fun c -> c.B.c_quick) quick);
  let jacobi = B.filter_cases ~filter:"jacobi" all in
  Alcotest.(check bool) "filter keeps only matches" true
    (jacobi <> [] && List.for_all (fun c -> c.B.c_app = "jacobi") jacobi);
  let both = B.filter_cases ~filter:"jacobi" ~quick:true all in
  Alcotest.(check bool) "filters compose" true
    (both <> []
    && List.for_all (fun c -> c.B.c_quick && c.B.c_app = "jacobi") both);
  Alcotest.(check (list string)) "no match" []
    (List.map (fun c -> c.B.c_id) (B.filter_cases ~filter:"nonesuch" all))

(* --- snapshot file I/O, plain and gzip --- *)

let test_load_gzip_transparent () =
  let t = B.run ~seeds:[ 0 ] ~filter:"jacobi:hbrc_mw:bip-myrinet" () in
  let text = Json.to_string_pretty (B.to_json t) ^ "\n" in
  let check path =
    Gzip.write_file path text;
    let back =
      match B.load path with
      | Ok t -> t
      | Error msg -> Alcotest.failf "load %s: %s" path msg
    in
    Sys.remove path;
    Alcotest.(check bool) (path ^ " loads back") true (back = t)
  in
  Alcotest.(check int) "filter selected one case" 1 (List.length t.B.bs_results);
  check (Filename.temp_file "dsm_macro" ".json");
  check (Filename.temp_file "dsm_macro" ".json.gz")

let () =
  Alcotest.run "bench_suite"
    [
      ( "schema",
        [
          QCheck_alcotest.to_alcotest prop_schema_roundtrip;
          Alcotest.test_case "unknown schema rejected" `Quick
            test_schema_version_rejected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seeds, same samples" `Quick
            test_run_case_deterministic;
          Alcotest.test_case "case identity metadata" `Quick test_case_meta;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "well-formed" `Quick test_matrix_well_formed;
          Alcotest.test_case "filtering" `Quick test_filter_cases;
        ] );
      ( "io",
        [
          Alcotest.test_case "gzip-transparent load" `Quick
            test_load_gzip_transparent;
        ] );
    ]

(* Tests of the paged-memory substrate: geometry, rights, frames, diffs. *)

open Dsmpm2_mem

let geo = Page.geometry ~size:4096

(* --- Page --- *)

let test_page_geometry () =
  Alcotest.(check int) "size" 4096 (Page.size geo);
  Alcotest.(check int) "page of addr" 2 (Page.page_of_addr geo 8192);
  Alcotest.(check int) "offset" 100 (Page.offset_of_addr geo 4196);
  Alcotest.(check int) "base" 8192 (Page.base_of_page geo 2);
  Alcotest.(check (list int)) "range within page" [ 1 ] (Page.pages_of_range geo ~addr:4096 ~len:4096);
  Alcotest.(check (list int)) "straddling range" [ 1; 2 ]
    (Page.pages_of_range geo ~addr:8000 ~len:400)

let test_page_rejects_bad_size () =
  Alcotest.check_raises "power of two"
    (Invalid_argument "Page.geometry: size must be a power of two") (fun () ->
      ignore (Page.geometry ~size:3000))

(* --- Access --- *)

let test_access_lattice () =
  Alcotest.(check bool) "none denies read" false (Access.allows Access.No_access Access.Read);
  Alcotest.(check bool) "ro allows read" true (Access.allows Access.Read_only Access.Read);
  Alcotest.(check bool) "ro denies write" false (Access.allows Access.Read_only Access.Write);
  Alcotest.(check bool) "rw allows write" true (Access.allows Access.Read_write Access.Write);
  Alcotest.(check bool) "rw includes ro" true (Access.includes Access.Read_write Access.Read_only);
  Alcotest.(check bool) "ro excludes rw" false (Access.includes Access.Read_only Access.Read_write)

let access_gen =
  QCheck.Gen.oneofl [ Access.No_access; Access.Read_only; Access.Read_write ]

let prop_access_merge_is_lub =
  QCheck.Test.make ~name:"merge is least upper bound" ~count:100
    (QCheck.make (QCheck.Gen.pair access_gen access_gen))
    (fun (a, b) ->
      let m = Access.merge a b in
      Access.includes m a && Access.includes m b
      && (m = a || m = b))

(* --- Frame_store --- *)

let test_frame_store_rw () =
  let fs = Frame_store.create ~geometry:geo in
  Frame_store.write_int fs ~addr:4096 123456789;
  Alcotest.(check int) "read back" 123456789 (Frame_store.read_int fs ~addr:4096);
  Alcotest.(check int) "negative values" (-42)
    (Frame_store.write_int fs ~addr:4104 (-42);
     Frame_store.read_int fs ~addr:4104);
  Frame_store.write_byte fs ~addr:8192 200;
  Alcotest.(check int) "byte" 200 (Frame_store.read_byte fs ~addr:8192);
  Alcotest.(check int) "two frames" 2 (Frame_store.frame_count fs)

let test_frame_store_unaligned_rejected () =
  let fs = Frame_store.create ~geometry:geo in
  Alcotest.check_raises "unaligned word"
    (Invalid_argument "Frame_store: unaligned word access at 0x1001") (fun () ->
      ignore (Frame_store.read_int fs ~addr:4097))

let test_frame_store_install_copies () =
  let fs = Frame_store.create ~geometry:geo in
  let data = Bytes.make 4096 'x' in
  Frame_store.install fs 7 data;
  Bytes.set data 0 'y';
  (* mutation of the source must not leak into the store *)
  Alcotest.(check int) "deep copy" (Char.code 'x') (Frame_store.read_byte fs ~addr:(7 * 4096));
  Frame_store.drop fs 7;
  Alcotest.(check bool) "dropped" false (Frame_store.has_frame fs 7)

let test_frame_store_install_wrong_size () =
  let fs = Frame_store.create ~geometry:geo in
  Alcotest.check_raises "length checked"
    (Invalid_argument "Frame_store.install: wrong page length") (fun () ->
      Frame_store.install fs 1 (Bytes.create 100))

let test_frame_store_install_owned_adopts () =
  let fs = Frame_store.create ~geometry:geo in
  let data = Bytes.make 4096 'x' in
  Frame_store.install_owned fs 7 data;
  (* Ownership transferred: the store's frame IS the caller's buffer (the
     whole point — one copy per page transfer, not two). *)
  Alcotest.(check bool) "no copy made" true (Frame_store.frame fs 7 == data);
  Alcotest.check_raises "length still checked"
    (Invalid_argument "Frame_store.install_owned: wrong page length") (fun () ->
      Frame_store.install_owned fs 1 (Bytes.create 100))

let test_frame_store_cache_tracks_drop_and_install () =
  let fs = Frame_store.create ~geometry:geo in
  Frame_store.write_int fs ~addr:(7 * 4096) 11;
  (* Page 7 is now the cached hot entry; a drop must invalidate the cache. *)
  Frame_store.drop fs 7;
  Alcotest.(check bool) "dropped" false (Frame_store.has_frame fs 7);
  Alcotest.(check int) "re-created zeroed" 0 (Frame_store.read_int fs ~addr:(7 * 4096));
  (* An install over the hot page must serve the new data, not the stale
     cached frame. *)
  Frame_store.write_int fs ~addr:(3 * 4096) 5;
  let fresh = Bytes.make 4096 '\000' in
  Bytes.set_int64_le fresh 0 99L;
  Frame_store.install fs 3 fresh;
  Alcotest.(check int) "install visible through cache" 99
    (Frame_store.read_int fs ~addr:(3 * 4096));
  (* peek must also agree with the cache. *)
  (match Frame_store.peek fs 3 with
  | Some f -> Alcotest.(check int64) "peek sees install" 99L (Bytes.get_int64_le f 0)
  | None -> Alcotest.fail "frame missing after install")

(* --- Diff --- *)

let test_diff_compute_apply_roundtrip () =
  let twin = Bytes.make 4096 '\000' in
  let current = Bytes.copy twin in
  Bytes.set current 10 'a';
  Bytes.set current 11 'b';
  Bytes.set current 100 'c';
  let diff = Diff.compute ~page:0 ~twin ~current in
  Alcotest.(check int) "two ranges" 2 (Diff.range_count diff);
  Alcotest.(check int) "payload" 3 (Diff.payload_bytes diff);
  Alcotest.(check int) "wire includes headers" (3 + 16) (Diff.wire_bytes diff);
  let target = Bytes.copy twin in
  Diff.apply diff target;
  Alcotest.(check bytes) "apply reproduces" current target

let test_diff_empty () =
  let twin = Bytes.make 64 'z' in
  let diff = Diff.compute ~page:0 ~twin ~current:(Bytes.copy twin) in
  Alcotest.(check bool) "no changes, empty" true (Diff.is_empty diff)

let prop_diff_roundtrip =
  QCheck.Test.make ~name:"diff(twin, current) applied to twin = current" ~count:200
    QCheck.(small_list (pair (int_bound 255) (int_bound 255)))
    (fun writes ->
      let twin = Bytes.make 256 '\000' in
      let current = Bytes.copy twin in
      List.iter (fun (off, v) -> Bytes.set current off (Char.chr v)) writes;
      let diff = Diff.compute ~page:0 ~twin ~current in
      let target = Bytes.copy twin in
      Diff.apply diff target;
      Bytes.equal target current)

let prop_diff_merge_composes =
  QCheck.Test.make ~name:"merge d1 d2 = apply d1 then d2" ~count:200
    QCheck.(
      pair
        (small_list (pair (int_bound 127) (int_bound 255)))
        (small_list (pair (int_bound 127) (int_bound 255))))
    (fun (w1, w2) ->
      let base = Bytes.make 128 '\000' in
      let v1 = Bytes.copy base in
      List.iter (fun (o, v) -> Bytes.set v1 o (Char.chr v)) w1;
      let d1 = Diff.compute ~page:3 ~twin:base ~current:v1 in
      let v2 = Bytes.copy v1 in
      List.iter (fun (o, v) -> Bytes.set v2 o (Char.chr v)) w2;
      let d2 = Diff.compute ~page:3 ~twin:v1 ~current:v2 in
      let merged = Diff.merge d1 d2 in
      let sequential = Bytes.copy base in
      Diff.apply d1 sequential;
      Diff.apply d2 sequential;
      let at_once = Bytes.copy base in
      Diff.apply merged at_once;
      Bytes.equal sequential at_once)

(* The word-scan kernel must produce byte-identical diffs to the
   byte-at-a-time reference — same ranges, same offsets, not just the same
   applied result. *)
let prop_diff_compute_matches_bytewise =
  QCheck.Test.make ~name:"compute = compute_bytewise (exact ranges)" ~count:300
    QCheck.(small_list (pair (int_bound 511) (int_bound 255)))
    (fun writes ->
      let twin = Bytes.make 512 '\000' in
      let current = Bytes.copy twin in
      List.iter (fun (off, v) -> Bytes.set current off (Char.chr v)) writes;
      let fast = Diff.compute ~page:0 ~twin ~current in
      let slow = Diff.compute_bytewise ~page:0 ~twin ~current in
      fast.Diff.page = slow.Diff.page && fast.Diff.ranges = slow.Diff.ranges)

(* Edges the word scan must get right: changes straddling a word boundary,
   in the unaligned tail of a page whose size is not a multiple of 8, and
   the full-page change. *)
let test_diff_compute_word_edges () =
  let check_equal name twin current =
    let fast = Diff.compute ~page:0 ~twin ~current in
    let slow = Diff.compute_bytewise ~page:0 ~twin ~current in
    Alcotest.(check bool) (name ^ ": matches reference") true
      (fast.Diff.ranges = slow.Diff.ranges);
    let target = Bytes.copy twin in
    Diff.apply fast target;
    Alcotest.(check bytes) (name ^ ": applies") current target
  in
  let twin = Bytes.make 64 '\000' in
  let straddle = Bytes.copy twin in
  Bytes.set straddle 7 'a';
  Bytes.set straddle 8 'b';
  check_equal "straddles word boundary" twin straddle;
  let tail = Bytes.make 61 '\000' in
  let tail_hit = Bytes.copy tail in
  Bytes.set tail_hit 60 'z';
  check_equal "last byte of unaligned tail" tail tail_hit;
  let all = Bytes.make 64 '\001' in
  check_equal "full-page change" twin all;
  let full_diff = Diff.compute ~page:0 ~twin ~current:all in
  Alcotest.(check int) "full change is one range" 1 (Diff.range_count full_diff);
  Alcotest.(check int) "full payload" 64 (Diff.payload_bytes full_diff);
  (* Sparse far-apart single words stay separate ranges. *)
  let sparse = Bytes.make 4096 '\000' in
  let sparse_hit = Bytes.copy sparse in
  Bytes.set_int64_le sparse_hit 0 1L;
  Bytes.set_int64_le sparse_hit 2048 1L;
  Bytes.set_int64_le sparse_hit 4088 1L;
  check_equal "sparse words" sparse sparse_hit;
  Alcotest.(check int) "three sparse ranges" 3
    (Diff.range_count (Diff.compute ~page:0 ~twin:sparse ~current:sparse_hit))

let test_diff_of_words () =
  let diff = Diff.of_words ~geometry:geo ~page:5 [ (0, 42); (16, 7); (8, 9) ] in
  Alcotest.(check int) "coalesced adjacent words" 1 (Diff.range_count diff);
  let target = Bytes.make 4096 '\000' in
  Diff.apply diff target;
  Alcotest.(check int64) "word 0" 42L (Bytes.get_int64_le target 0);
  Alcotest.(check int64) "word 1" 9L (Bytes.get_int64_le target 8);
  Alcotest.(check int64) "word 2" 7L (Bytes.get_int64_le target 16)

let test_diff_of_words_last_wins () =
  let diff = Diff.of_words ~geometry:geo ~page:0 [ (0, 1); (0, 2); (0, 3) ] in
  let target = Bytes.make 4096 '\000' in
  Diff.apply diff target;
  Alcotest.(check int64) "last record wins" 3L (Bytes.get_int64_le target 0)

(* Last-write-wins must hold per offset even when duplicates interleave with
   records for other (possibly overlapping-range) offsets. *)
let test_diff_of_words_interleaved_duplicates () =
  let diff =
    Diff.of_words ~geometry:geo ~page:0
      [ (0, 1); (8, 10); (0, 2); (16, 20); (8, 11); (0, 3) ]
  in
  let target = Bytes.make 4096 '\000' in
  Diff.apply diff target;
  Alcotest.(check int64) "offset 0 last" 3L (Bytes.get_int64_le target 0);
  Alcotest.(check int64) "offset 8 last" 11L (Bytes.get_int64_le target 8);
  Alcotest.(check int64) "offset 16 only" 20L (Bytes.get_int64_le target 16);
  (* The three adjacent words coalesce into a single normalised range. *)
  Alcotest.(check int) "coalesced" 1 (Diff.range_count diff)

let test_diff_of_words_validation () =
  Alcotest.check_raises "unaligned offset" (Invalid_argument "Diff.of_words: bad offset")
    (fun () -> ignore (Diff.of_words ~geometry:geo ~page:0 [ (3, 1) ]));
  Alcotest.check_raises "out of page" (Invalid_argument "Diff.of_words: bad offset")
    (fun () -> ignore (Diff.of_words ~geometry:geo ~page:0 [ (4096, 1) ]))

let test_diff_merge_page_mismatch () =
  let d1 = Diff.of_words ~geometry:geo ~page:1 [ (0, 1) ] in
  let d2 = Diff.of_words ~geometry:geo ~page:2 [ (0, 1) ] in
  Alcotest.check_raises "page mismatch" (Invalid_argument "Diff.merge: page mismatch")
    (fun () -> ignore (Diff.merge d1 d2))

let prop_pages_cover_range =
  QCheck.Test.make ~name:"pages_of_range covers every byte" ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 1 20_000))
    (fun (addr, len) ->
      let pages = Page.pages_of_range geo ~addr ~len in
      let covers a = List.mem (Page.page_of_addr geo a) pages in
      covers addr && covers (addr + len - 1)
      && List.length pages = List.length (List.sort_uniq compare pages))

let prop_word_roundtrip =
  QCheck.Test.make ~name:"frame word write/read round trip" ~count:200
    QCheck.(pair (int_range 0 511) int)
    (fun (word, v) ->
      let fs = Frame_store.create ~geometry:geo in
      let addr = word * 8 in
      Frame_store.write_int fs ~addr v;
      Frame_store.read_int fs ~addr = v)

let prop_diff_wire_accounting =
  QCheck.Test.make ~name:"wire bytes = payload + 8 per range" ~count:200
    QCheck.(small_list (pair (int_bound 255) (int_bound 255)))
    (fun writes ->
      let twin = Bytes.make 256 '\000' in
      let current = Bytes.copy twin in
      List.iter (fun (o, v) -> Bytes.set current o (Char.chr v)) writes;
      let d = Diff.compute ~page:0 ~twin ~current in
      Diff.wire_bytes d = Diff.payload_bytes d + (8 * Diff.range_count d))

let () =
  Alcotest.run "mem"
    [
      ( "page",
        [
          Alcotest.test_case "geometry" `Quick test_page_geometry;
          Alcotest.test_case "bad size" `Quick test_page_rejects_bad_size;
        ] );
      ( "access",
        [
          Alcotest.test_case "lattice" `Quick test_access_lattice;
          QCheck_alcotest.to_alcotest prop_access_merge_is_lub;
        ] );
      ( "frame_store",
        [
          Alcotest.test_case "read/write" `Quick test_frame_store_rw;
          Alcotest.test_case "unaligned rejected" `Quick test_frame_store_unaligned_rejected;
          Alcotest.test_case "install copies" `Quick test_frame_store_install_copies;
          Alcotest.test_case "install size checked" `Quick test_frame_store_install_wrong_size;
          Alcotest.test_case "install_owned adopts" `Quick
            test_frame_store_install_owned_adopts;
          Alcotest.test_case "hot-page cache coherent" `Quick
            test_frame_store_cache_tracks_drop_and_install;
        ] );
      ( "diff",
        [
          Alcotest.test_case "compute/apply" `Quick test_diff_compute_apply_roundtrip;
          Alcotest.test_case "empty" `Quick test_diff_empty;
          QCheck_alcotest.to_alcotest prop_diff_roundtrip;
          QCheck_alcotest.to_alcotest prop_diff_merge_composes;
          QCheck_alcotest.to_alcotest prop_diff_compute_matches_bytewise;
          Alcotest.test_case "word-scan edges" `Quick test_diff_compute_word_edges;
          Alcotest.test_case "of_words" `Quick test_diff_of_words;
          Alcotest.test_case "of_words last wins" `Quick test_diff_of_words_last_wins;
          Alcotest.test_case "of_words interleaved duplicates" `Quick
            test_diff_of_words_interleaved_duplicates;
          Alcotest.test_case "of_words validation" `Quick test_diff_of_words_validation;
          Alcotest.test_case "merge page mismatch" `Quick test_diff_merge_page_mismatch;
          QCheck_alcotest.to_alcotest prop_diff_wire_accounting;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_pages_cover_range;
          QCheck_alcotest.to_alcotest prop_word_roundtrip;
        ] );
    ]
